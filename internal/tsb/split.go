package tsb

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/keys"
	"repro/internal/latch"
	"repro/internal/storage"
	"repro/internal/wal"
)

// postTask asks for the index term describing a committed split to be
// posted at parentLevel: a rectangle term when the parent is level 1, a
// key-only term higher up. When gcHead is set the task is instead a GC
// sweep of the history chain hanging off that current node.
type postTask struct {
	parentLevel int
	child       storage.PageID
	rect        Rect
	gcHead      storage.PageID
}

func (t postTask) key() string {
	if t.gcHead != storage.NilPage {
		return fmt.Sprintf("gc:%d", t.gcHead)
	}
	return fmt.Sprintf("%d:%d", t.parentLevel, t.child)
}

// completer mirrors internal/core's: schedule is non-blocking and safe
// under latches; execution re-tests state, so duplicates are no-ops. A
// task stays in the pending set until done — not merely until popped —
// so refsChild covers in-flight tasks too: the page reaper must not free
// a page a running postTerm is still about to latch.
type completer struct {
	t       *Tree
	mu      sync.Mutex
	cond    *sync.Cond
	tasks   []postTask
	pending map[string]struct{}
	active  int
	stopped bool
	wg      sync.WaitGroup
	// draining suspends governor pacing so shutdown drains at full speed.
	draining atomic.Bool
}

func newCompleter(t *Tree) *completer {
	c := &completer{t: t, pending: make(map[string]struct{})}
	c.cond = sync.NewCond(&c.mu)
	if !t.opts.SyncCompletion {
		for i := 0; i < t.opts.CompletionWorkers; i++ {
			c.wg.Add(1)
			go c.worker()
		}
	}
	return c
}

func (c *completer) schedule(task postTask) {
	if c.t.opts.NoCompletion {
		return
	}
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	if _, dup := c.pending[task.key()]; dup {
		c.mu.Unlock()
		return
	}
	c.pending[task.key()] = struct{}{}
	c.tasks = append(c.tasks, task)
	c.t.Stats.PostsScheduled.Add(1)
	c.cond.Broadcast()
	c.mu.Unlock()
}

// depth reports the current queue depth (scheduled, unpopped tasks).
func (c *completer) depth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.tasks)
}

// refsChild reports whether a level-1 posting task referencing pid is
// pending or running. History-chain postings are the only tasks that can
// name a reclaimable page; the reaper defers freeing while one is live,
// because a running postTerm may be about to latch the page.
func (c *completer) refsChild(pid storage.PageID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.pending[fmt.Sprintf("%d:%d", 1, pid)]
	return ok
}

func (c *completer) pop(block bool) (postTask, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.tasks) == 0 {
		if !block || c.stopped {
			return postTask{}, false
		}
		c.cond.Wait()
	}
	task := c.tasks[0]
	c.tasks = c.tasks[1:]
	c.active++
	return task, true
}

func (c *completer) done(task postTask) {
	c.mu.Lock()
	delete(c.pending, task.key())
	c.active--
	c.cond.Broadcast()
	c.mu.Unlock()
}

func (c *completer) worker() {
	defer c.wg.Done()
	for {
		task, ok := c.pop(true)
		if !ok {
			return
		}
		// Chain maintenance (GC + reclamation) is paced by the governor so
		// background sweeps never convoy foreground writers; term postings
		// run unpaced (the foreground is already navigating around the
		// unposted structure). Draining bypasses the pacer.
		if task.gcHead != storage.NilPage && !c.draining.Load() {
			c.t.opts.Governor.Admit(c.depth())
		}
		c.t.run(task)
		c.done(task)
	}
}

func (c *completer) drain() {
	if c.t.opts.SyncCompletion {
		for {
			task, ok := c.pop(false)
			if !ok {
				return
			}
			c.t.run(task)
			c.done(task)
		}
	}
	c.mu.Lock()
	for len(c.tasks) > 0 || c.active > 0 {
		c.cond.Wait()
	}
	c.mu.Unlock()
}

func (c *completer) stop() {
	c.mu.Lock()
	c.stopped = true
	c.tasks = nil
	c.cond.Broadcast()
	c.mu.Unlock()
	c.wg.Wait()
}

// closeDrain is the orderly shutdown: work off every pending completion,
// then stop the workers. Nothing pending is discarded, so a close-then-
// reopen never finds a scheduled posting or GC pass silently dropped.
func (c *completer) closeDrain() {
	c.draining.Store(true)
	c.drain()
	c.stop()
}

// run dispatches one completing task: a GC chain sweep (plus page
// reclamation when enabled) or a term posting.
func (t *Tree) run(task postTask) {
	if task.gcHead != storage.NilPage {
		_, _ = t.gcChain(task.gcHead)
		if t.opts.Reclaim {
			_, _ = t.reclaimChain(task.gcHead)
		}
		return
	}
	t.postTerm(task)
}

// noteKeySibling schedules posting for a key sibling discovered by a side
// traversal (lazy completion, §5.1). The sibling's current direct
// rectangle is read under its latch when posted; here the delegation
// boundary suffices.
func (t *Tree) noteKeySibling(n *Node, pid storage.PageID) {
	if n.KeySib == storage.NilPage || n.Rect.KeyHigh.Unbounded {
		return
	}
	t.comp.schedule(postTask{
		parentLevel: n.Level + 1,
		child:       n.KeySib,
		rect: Rect{
			KeyLow:   keys.Clone(n.Rect.KeyHigh.Key),
			KeyHigh:  keys.Inf, // refined at posting time for level-1 terms
			TimeLow:  n.Rect.TimeLow,
			TimeHigh: n.Rect.TimeHigh,
		},
	})
}

// noteHistSibling schedules posting for a history sibling.
func (t *Tree) noteHistSibling(n *Node) {
	if n.HistSib == storage.NilPage || !n.IsData() {
		return
	}
	t.comp.schedule(postTask{
		parentLevel: 1,
		child:       n.HistSib,
		rect: Rect{
			KeyLow:   keys.Clone(n.Rect.KeyLow),
			KeyHigh:  n.Rect.KeyHigh,
			TimeLow:  0,
			TimeHigh: n.Rect.TimeLow,
		},
	})
}

// splitData splits the full, U-latched data node as an independent atomic
// action: a TIME split when enough of the node is history (dead
// versions), a KEY split otherwise (§2.2.2, Figure 1). The latch is
// released on return; the caller retries its operation.
func (t *Tree) splitData(o *opCtx, leaf *nref) error {
	aa := t.tm.BeginAtomicAction()
	o.promote(leaf)
	n := leaf.n
	pre := n.clone()

	distinct := 0
	var prevKey keys.Key
	for _, e := range n.Entries {
		if prevKey == nil || !keys.Equal(prevKey, e.Key) {
			distinct++
			prevKey = e.Key
		}
	}

	timeSplit := distinct <= int(float64(len(n.Entries))*t.opts.CurrentFraction) && distinct < len(n.Entries)
	if distinct < 2 {
		timeSplit = true // single-key node: only history can leave
	}
	if timeSplit && distinct == len(n.Entries) {
		// Nothing would leave: forced to key split (distinct >= 2 here).
		timeSplit = false
	}

	newPid, err := t.store.Alloc(aa, &o.tr)
	if err != nil {
		o.release(leaf)
		_ = aa.Abort()
		return err
	}

	var newNode *Node
	var taskRect Rect
	if timeSplit {
		ts := t.tick()
		newNode = &Node{
			Level: 0,
			Rect: Rect{
				KeyLow:   keys.Clone(n.Rect.KeyLow),
				KeyHigh:  n.Rect.KeyHigh,
				TimeLow:  n.Rect.TimeLow,
				TimeHigh: ts,
			},
			// "New historic nodes contain copies of old history
			// pointers" (Figure 1). The edge's shared mark transfers with
			// it; the current node's replacement edge is fresh
			// (applyTimeSplit clears its mark).
			HistSib:    n.HistSib,
			HistShared: n.HistShared,
			Entries:    historyContents(pre, ts),
		}
		newNode.Rect.KeyHigh.Key = keys.Clone(newNode.Rect.KeyHigh.Key)
		taskRect = cloneRect(newNode.Rect)
		if err := t.formatNode(o, aa, newPid, newNode); err != nil {
			o.release(leaf)
			_ = aa.Abort()
			return err
		}
		lsn := aa.LogUpdate(t.store.Pool.StoreID, uint64(leaf.pid()), KindTimeSplit, encTimeSplit(ts, newPid, pre))
		applyTimeSplit(n, ts, newPid)
		leaf.f.MarkDirty(lsn)
		t.Stats.TimeSplits.Add(1)
	} else {
		k := t.medianKey(n)
		newNode = &Node{
			Level: 0,
			Rect: Rect{
				KeyLow:   keys.Clone(k),
				KeyHigh:  n.Rect.KeyHigh,
				TimeLow:  n.Rect.TimeLow,
				TimeHigh: NoEnd,
			},
			KeySib: n.KeySib,
			// "The new node will contain a copy of the history sibling
			// pointer": the new current node is responsible for the
			// entire history of its key space. Both halves now reach the
			// same chain, so both edges are marked shared (applyKeySplit
			// marks the trimmed half).
			HistSib:    n.HistSib,
			HistShared: n.HistSib != storage.NilPage,
		}
		newNode.Rect.KeyHigh.Key = keys.Clone(newNode.Rect.KeyHigh.Key)
		for _, e := range pre.Entries {
			if keys.Compare(e.Key, k) >= 0 {
				newNode.Entries = append(newNode.Entries, cloneEntry(e))
			}
		}
		taskRect = cloneRect(newNode.Rect)
		if err := t.formatNode(o, aa, newPid, newNode); err != nil {
			o.release(leaf)
			_ = aa.Abort()
			return err
		}
		lsn := aa.LogUpdate(t.store.Pool.StoreID, uint64(leaf.pid()), KindKeySplit, encKeySplit(k, newPid, pre))
		applyKeySplit(n, k, newPid)
		leaf.f.MarkDirty(lsn)
		t.Stats.KeySplits.Add(1)
	}

	// Commit before unlatching, then schedule the separate posting
	// action (§3.2.1 step 6).
	leafPid := leaf.pid()
	cerr := aa.Commit()
	o.release(leaf)
	if cerr != nil {
		return cerr
	}
	t.comp.schedule(postTask{parentLevel: 1, child: newPid, rect: taskRect})
	if timeSplit && t.opts.GC {
		// The split just grew this leaf's history chain; sweep it for
		// nodes that fell below the visibility horizon.
		t.comp.schedule(postTask{gcHead: leafPid})
	}
	return nil
}

// medianKey picks the median distinct key of a data node (strictly above
// its low bound, so both halves are non-empty).
func (t *Tree) medianKey(n *Node) keys.Key {
	var distinct []keys.Key
	for i, e := range n.Entries {
		if i == 0 || !keys.Equal(n.Entries[i-1].Key, e.Key) {
			distinct = append(distinct, e.Key)
		}
	}
	k := distinct[len(distinct)/2]
	if len(distinct) >= 2 && (n.Rect.KeyLow == nil || keys.Compare(k, n.Rect.KeyLow) > 0) {
		return keys.Clone(k)
	}
	return keys.Clone(distinct[len(distinct)-1])
}

// formatNode creates and logs a fresh node image under the action.
func (t *Tree) formatNode(o *opCtx, aa logUpdater, pid storage.PageID, n *Node) error {
	f, err := t.store.Pool.Create(pid)
	if err != nil {
		return err
	}
	f.Latch.AcquireX()
	o.tr.Acquired(&f.Latch, o.rank(n.Level), latch.X)
	lsn := aa.LogUpdate(t.store.Pool.StoreID, uint64(pid), KindFormat, encNodeImage(n))
	f.Data = n
	f.MarkDirty(lsn)
	o.tr.Released(&f.Latch)
	f.Latch.ReleaseX()
	t.store.Pool.Unpin(f)
	return nil
}

// logUpdater is the logging slice of txn.Txn used here.
type logUpdater interface {
	LogUpdate(storeID uint32, pageID uint64, kind wal.Kind, payload []byte) wal.LSN
}

// postTerm is the completing atomic action for TSB splits: post the index
// term describing the child in the level task.parentLevel index node
// whose key range covers the child's low key. It follows §5.3 — Search,
// Verify (posted-test; under CNS the child's existence needs no
// verification, nodes are immortal), Space Test (index key split with
// clipping, or root growth), Update — with all latches retained until the
// action commits.
func (t *Tree) postTerm(task postTask) {
	if _, dead := t.deadPages.Load(task.child); dead {
		// The child was reclaimed (and its page possibly recycled as an
		// unrelated node) after this task was scheduled; latching it to
		// re-test would read the impostor. The reaper only frees a page
		// with no remaining terms and no pending task, so nothing is owed.
		t.Stats.PostsNoop.Add(1)
		return
	}
	_ = t.retryLoop(func() error {
		o := t.newOp(nil)
		defer o.done()
		node, err := t.descend(o, task.rect.KeyLow, NoEnd-1, task.parentLevel, latch.U, false)
		if errors.Is(err, errLevelGone) {
			t.Stats.PostsNoop.Add(1)
			return nil
		}
		if err != nil {
			return err
		}

		if _, posted := node.n.termFor(task.child); posted {
			t.Stats.PostsNoop.Add(1)
			o.release(&node)
			return nil
		}

		if task.parentLevel == 1 {
			// A side traversal may re-schedule posting for a node GC has
			// since retired; don't resurrect its term.
			child, err := o.acquire(task.child, latch.S, 0)
			if err != nil {
				o.release(&node)
				return err
			}
			retired := child.n.Retired
			o.release(&child)
			if retired {
				t.Stats.PostsNoop.Add(1)
				o.release(&node)
				return nil
			}
		}

		aa := t.tm.BeginAtomicAction()
		var held []nref
		releaseAll := func() {
			o.release(&node)
			for i := len(held) - 1; i >= 0; i-- {
				o.release(&held[i])
			}
			held = nil
		}
		o.promote(&node)

		// Space Test.
		for len(node.n.Entries) >= t.opts.IndexCapacity {
			k, ok := t.indexSplitKey(node.n)
			if !ok {
				// No usable boundary (e.g. the node is all history terms
				// of one key range): soft overflow rather than a complex
				// index time split; documented simplification.
				t.Stats.SoftOverflows.Add(1)
				break
			}
			if node.pid() == t.root {
				next, err := t.growRoot(o, aa, &node, k, task.rect.KeyLow)
				if err != nil {
					releaseAll()
					_ = aa.Abort()
					return err
				}
				held = append(held, node)
				node = next
				continue
			}
			next, err := t.splitIndex(o, aa, &node, k, task.rect.KeyLow)
			if err != nil {
				releaseAll()
				_ = aa.Abort()
				return err
			}
			if next.f != nil {
				held = append(held, node)
				node = next
			}
		}

		if node.n.Level == 1 {
			term := Entry{Child: task.child, ChildRect: cloneRect(task.rect)}
			if term.ChildRect.KeyHigh.Unbounded && !node.n.Rect.KeyHigh.Unbounded {
				// Key-sibling tasks carry an open key bound; tighten it to
				// the child's actual direct bound by reading the child.
				child, err := o.acquire(task.child, latch.S, 0)
				if err == nil {
					term.ChildRect = cloneRect(child.n.Rect)
					o.release(&child)
				}
			}
			lsn := aa.LogUpdate(t.store.Pool.StoreID, uint64(node.pid()), KindPostTerm, encTerm(term))
			node.n.insertTerm(term)
			node.f.MarkDirty(lsn)
		} else {
			lsn := aa.LogUpdate(t.store.Pool.StoreID, uint64(node.pid()), KindPostKeyTerm, encKeyTerm(task.rect.KeyLow, task.child))
			node.n.insertKeyTerm(Entry{Key: keys.Clone(task.rect.KeyLow), Child: task.child})
			node.f.MarkDirty(lsn)
		}
		err = aa.Commit()
		releaseAll()
		if err != nil {
			return err
		}
		t.Stats.PostsPerformed.Add(1)
		return nil
	})
}

// indexSplitKey picks a key boundary that puts at least one whole term on
// each side: the median distinct boundary strictly above the node's low
// key. Level-1 boundaries come from term KeyLows; clipping handles terms
// that span the chosen key.
func (t *Tree) indexSplitKey(n *Node) (keys.Key, bool) {
	var bounds []keys.Key
	seen := map[string]bool{}
	for _, e := range n.Entries {
		var b keys.Key
		if n.Level == 1 {
			b = e.ChildRect.KeyLow
		} else {
			b = e.Key
		}
		if b == nil {
			continue
		}
		if n.Rect.KeyLow != nil && keys.Compare(b, n.Rect.KeyLow) <= 0 {
			continue
		}
		if !seen[string(b)] {
			seen[string(b)] = true
			bounds = append(bounds, b)
		}
	}
	if len(bounds) == 0 {
		return nil, false
	}
	sortKeys(bounds)
	return keys.Clone(bounds[len(bounds)/2]), true
}

func sortKeys(ks []keys.Key) {
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && keys.Compare(ks[j], ks[j-1]) < 0; j-- {
			ks[j], ks[j-1] = ks[j-1], ks[j]
		}
	}
}

// splitIndex key-splits the X-latched index node at k inside the posting
// action, CLIPPING spanning level-1 terms into both halves (§3.2.2). It
// returns the half that covers searchKey X-latched (a zero nref when the
// original node still covers it), schedules the upper-level posting after
// the enclosing action commits via the completer (safe: the sibling is
// only reachable through the side pointer until then, and the whole
// action holds its latches to commit).
func (t *Tree) splitIndex(o *opCtx, aa logUpdater, node *nref, k keys.Key, searchKey keys.Key) (nref, error) {
	n := node.n
	pre := n.clone()
	sibPid, err := t.store.Alloc(aa, &o.tr)
	if err != nil {
		return nref{}, err
	}
	entries, clipped := indexSiblingEntries(pre, k)
	sib := &Node{
		Level: n.Level,
		Rect: Rect{
			KeyLow:   keys.Clone(k),
			KeyHigh:  pre.Rect.KeyHigh,
			TimeLow:  0,
			TimeHigh: NoEnd,
		},
		KeySib:  pre.KeySib,
		Entries: entries,
	}
	sib.Rect.KeyHigh.Key = keys.Clone(sib.Rect.KeyHigh.Key)
	if err := t.formatNode(o, aa, sibPid, sib); err != nil {
		return nref{}, err
	}
	lsn := aa.LogUpdate(t.store.Pool.StoreID, uint64(node.pid()), KindIndexKeySplit, encKeySplit(k, sibPid, pre))
	applyIndexKeySplit(n, k, sibPid)
	node.f.MarkDirty(lsn)
	t.Stats.IndexSplits.Add(1)
	t.Stats.ClippedTerms.Add(int64(clipped))
	t.comp.schedule(postTask{
		parentLevel: n.Level + 1,
		child:       sibPid,
		rect:        cloneRect(sib.Rect),
	})
	if keys.Compare(searchKey, k) >= 0 {
		return o.acquire(sibPid, latch.X, n.Level)
	}
	return nref{}, nil
}

// growRoot raises the tree height: the root's contents move to two new
// nodes A (low half, side pointer to B) and B (high half), and the root
// becomes an index node one level up with two key terms. The root page
// never moves. Returns the half covering searchKey, X-latched.
func (t *Tree) growRoot(o *opCtx, aa logUpdater, root *nref, k keys.Key, searchKey keys.Key) (nref, error) {
	n := root.n
	pre := n.clone()
	pidB, err := t.store.Alloc(aa, &o.tr)
	if err != nil {
		return nref{}, err
	}
	pidA, err := t.store.Alloc(aa, &o.tr)
	if err != nil {
		return nref{}, err
	}
	entriesB, clippedB := indexSiblingEntries(pre, k)
	nodeB := &Node{
		Level:   pre.Level,
		Rect:    Rect{KeyLow: keys.Clone(k), KeyHigh: keys.Inf, TimeLow: 0, TimeHigh: NoEnd},
		Entries: entriesB,
	}
	nodeA := &Node{
		Level:  pre.Level,
		Rect:   Rect{KeyLow: nil, KeyHigh: keys.At(k), TimeLow: 0, TimeHigh: NoEnd},
		KeySib: pidB,
	}
	for _, e := range pre.Entries {
		if pre.Level == 1 {
			if keys.Compare(e.ChildRect.KeyLow, k) < 0 {
				c := cloneEntry(e)
				if e.ChildRect.SpansKey(k) {
					c.Clipped = true
				}
				nodeA.Entries = append(nodeA.Entries, c)
			}
		} else if keys.Compare(e.Key, k) < 0 {
			nodeA.Entries = append(nodeA.Entries, cloneEntry(e))
		}
	}
	if err := t.formatNode(o, aa, pidB, nodeB); err != nil {
		return nref{}, err
	}
	if err := t.formatNode(o, aa, pidA, nodeA); err != nil {
		return nref{}, err
	}

	termA := Entry{Key: nil, Child: pidA}
	termB := Entry{Key: keys.Clone(k), Child: pidB}
	lsn := aa.LogUpdate(t.store.Pool.StoreID, uint64(root.pid()), KindRootGrow, encRootGrow(termA, termB, pre))
	n.Level++
	n.Entries = []Entry{termA, termB}
	n.Rect = EntireRect()
	n.KeySib = storage.NilPage
	n.HistSib = storage.NilPage
	root.f.MarkDirty(lsn)
	t.Stats.RootGrowths.Add(1)
	t.Stats.ClippedTerms.Add(int64(clippedB))

	pid := pidA
	if keys.Compare(searchKey, k) >= 0 {
		pid = pidB
	}
	return o.acquire(pid, latch.X, pre.Level)
}
