package tsb

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/keys"
	"repro/internal/latch"
	"repro/internal/lock"
	"repro/internal/maint"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Options configure one TSB tree.
type Options struct {
	// DataCapacity and IndexCapacity are maximum entry counts (page-size
	// stand-ins). Defaults: 64, 64.
	DataCapacity  int
	IndexCapacity int
	// CurrentFraction is the time-vs-key split policy knob: when fewer
	// than this fraction of a full data node's versions are alive, the
	// node is time-split (history moves out); otherwise it is key-split.
	// Default 0.67.
	CurrentFraction float64
	// SyncCompletion, CompletionWorkers and NoCompletion mirror the core
	// tree's lazy-completion controls.
	SyncCompletion    bool
	CompletionWorkers int
	NoCompletion      bool
	// CheckLatchOrder enables per-operation latch order assertions.
	CheckLatchOrder bool
	// PessimisticDescent disables the optimistic (version-validated)
	// interior navigation, forcing every descent through the latched
	// path. For comparison runs and targeted tests.
	PessimisticDescent bool
	// GC enables background version garbage collection: every committed
	// time split schedules a sweep of that leaf's history chain through
	// the completion machinery, retiring nodes whose whole time range
	// lies below the transaction manager's visibility horizon. RunGC
	// sweeps the whole tree on demand regardless of this flag.
	GC bool
	// Reclaim additionally frees the pages of fully-retired history-chain
	// tails so sustained churn reaches a steady-state store size instead
	// of growing without bound. It trades away part of the CNS latching
	// economy: history-edge traversals (and the optimistic descent's final
	// edge) latch-couple, because a saved pointer may now name a freed
	// page. Retired non-tail nodes stay linked (gcChain stops unlinking)
	// so the reaper can reach them; see reclaim.go for the full protocol.
	Reclaim bool
	// Governor, when non-nil, paces background chain maintenance (GC
	// sweeps and page reclamation) through the shared maintenance budget;
	// a nil governor admits immediately.
	Governor *maint.Governor
}

func (o Options) normalized() Options {
	if o.DataCapacity < 4 {
		if o.DataCapacity <= 0 {
			o.DataCapacity = 64
		} else {
			o.DataCapacity = 4
		}
	}
	if o.IndexCapacity < 4 {
		if o.IndexCapacity <= 0 {
			o.IndexCapacity = 64
		} else {
			o.IndexCapacity = 4
		}
	}
	if o.CurrentFraction <= 0 || o.CurrentFraction > 1 {
		o.CurrentFraction = 0.67
	}
	if o.CompletionWorkers <= 0 {
		o.CompletionWorkers = 2
	}
	return o
}

// Stats counts TSB events.
type Stats struct {
	Puts           atomic.Int64
	Gets           atomic.Int64
	TimeSplits     atomic.Int64
	KeySplits      atomic.Int64
	IndexSplits    atomic.Int64
	RootGrowths    atomic.Int64
	KeySibWalks    atomic.Int64
	HistSibWalks   atomic.Int64
	PostsScheduled atomic.Int64
	PostsPerformed atomic.Int64
	PostsNoop      atomic.Int64
	ClippedTerms   atomic.Int64
	SoftOverflows  atomic.Int64
	Restarts       atomic.Int64

	// Batched access-path counters: BatchOps counts leaf-runs applied by
	// MultiGet/MultiPut/MultiDelete (one per single-descent, single-latch
	// group); LeafVisitsSaved sums the descents those runs avoided (run
	// length minus one).
	BatchOps        atomic.Int64
	LeafVisitsSaved atomic.Int64

	// Optimistic descent counters: hits are interior-node visits served
	// from a validated snapshot without latching; retries are snapshot
	// refreshes or validation failures; fallbacks are whole descents
	// abandoned to the latched path.
	OptimisticHits      atomic.Int64
	OptimisticRetries   atomic.Int64
	OptimisticFallbacks atomic.Int64

	// Snapshot-read and version-GC counters. GCReclaimedVersions counts
	// version slots dropped from retired nodes; GCRetiredNodes counts the
	// nodes. SnapshotHistWalks counts history-sibling steps taken by
	// snapshot point reads chasing invisible versions.
	SnapshotGets     atomic.Int64
	SnapshotScans    atomic.Int64
	SnapshotHistWalks atomic.Int64
	GCPasses           atomic.Int64
	GCRetiredNodes     atomic.Int64
	GCReclaimedVersions atomic.Int64
	GCRemovedTerms      atomic.Int64

	// Page-reclamation counters (Options.Reclaim). GCFreedPages counts
	// chain tails whose pages were returned to the free-space map;
	// GCSharedSkips, tails kept because their incoming edge is (possibly)
	// multi-referenced; GCTermSkips, tails kept because a level-1 term
	// still references them; GCDeferredFrees, frees deferred because a
	// pending completion task still names the page.
	GCFreedPages    atomic.Int64
	GCSharedSkips   atomic.Int64
	GCTermSkips     atomic.Int64
	GCDeferredFrees atomic.Int64
}

// Tree is one TSB tree. Because historical nodes never split and no node
// is ever consolidated, the CNS invariant (§5.2.1) holds: traversals hold
// one latch at a time and saved state is trusted.
type Tree struct {
	Name string

	// lockSpace is the tree's lock namespace, derived once from Name.
	lockSpace uint32

	store   *storage.Store
	tm      *txn.Manager
	lm      *lock.Manager
	binding *Binding
	opts    Options
	root    storage.PageID
	comp    *completer
	clock   atomic.Uint64
	opPool  sync.Pool
	// gcMu serializes GC passes: two concurrent passes over one chain
	// would race to retire the same victim, and the loser's atomic-action
	// abort would re-post index terms the winner removed. Page reclamation
	// runs under it too, so while a reaper walks a chain the only possible
	// structure change is a split of the chain's current head.
	gcMu sync.Mutex
	// deadPages records pages freed by reclamation (volatile, like the
	// completion queue): a completing task scheduled before the free must
	// not latch the page afterwards — it may have been recycled as an
	// unrelated node — so postTerm consults this set first.
	deadPages sync.Map

	// rootf caches the root's buffer frame with one permanent pin (the
	// root page ID is fixed and the root is never de-allocated); see the
	// core package's rootFrame.
	rootf atomic.Pointer[storage.Frame]

	Stats Stats
}

// ErrKeyNotFound reports a missing (or deleted-as-of) key.
var ErrKeyNotFound = errors.New("tsb: key not found")

var errRetry = errors.New("tsb: internal retry")

// errLevelGone reports a descent target level above the current root; the
// posting that wanted it is obsolete until the root grows, and side
// traversals will reschedule it.
var errLevelGone = errors.New("tsb: target level does not exist yet")

// Create builds a new TSB tree: a level-1 index root over one data node
// covering all keys at all times. One atomic action.
func Create(store *storage.Store, tm *txn.Manager, lm *lock.Manager, b *Binding, name string, opts Options) (*Tree, error) {
	t := &Tree{Name: name, lockSpace: lock.SpaceID("tsb", name), store: store, tm: tm, lm: lm, binding: b, opts: opts.normalized()}
	aa := tm.BeginAtomicAction()
	o := t.newOp(nil)

	if f, err := store.Pool.Fetch(storage.MetaPage); err == nil {
		store.Pool.Unpin(f)
	} else if errors.Is(err, storage.ErrPageNotFound) {
		if err := store.Bootstrap(aa); err != nil {
			return nil, err
		}
	} else {
		return nil, err
	}

	rootPid, err := store.Alloc(aa, &o.tr)
	if err != nil {
		return nil, err
	}
	dataPid, err := store.Alloc(aa, &o.tr)
	if err != nil {
		return nil, err
	}

	data := &Node{Level: 0, Rect: EntireRect()}
	root := &Node{Level: 1, Rect: EntireRect(), Entries: []Entry{{Child: dataPid, ChildRect: EntireRect()}}}
	for _, nn := range []struct {
		pid  storage.PageID
		node *Node
	}{{dataPid, data}, {rootPid, root}} {
		f, err := store.Pool.Create(nn.pid)
		if err != nil {
			return nil, err
		}
		f.Latch.AcquireX()
		lsn := aa.LogUpdate(store.Pool.StoreID, uint64(nn.pid), KindFormat, encNodeImage(nn.node))
		f.Data = nn.node
		f.MarkDirty(lsn)
		f.Latch.ReleaseX()
		store.Pool.Unpin(f)
	}
	if err := store.SetRoot(aa, &o.tr, name, rootPid); err != nil {
		return nil, err
	}
	if err := aa.Commit(); err != nil {
		return nil, err
	}
	t.root = rootPid
	t.comp = newCompleter(t)
	b.Bind(t)
	tm.SetVersionClock(t.Now, t.tick)
	return t, nil
}

// Open attaches to an existing TSB tree after a restart. The version
// clock reseeds from the clock high water restart analysis reconstructed
// (the larger of the last checkpoint's persisted clock and the largest
// commit timestamp in the stable log) — NOT from the log's end LSN, which
// lives in a different space entirely: byte-offset LSNs run far ahead of
// version ticks, so seeding from EndLSN inflated post-restart timestamps
// by orders of magnitude. The analysis high water is exact: every
// surviving version's writer has a stamped commit record in the stable
// prefix (losers' versions are removed by undo before new work runs), so
// no timestamp can be reissued.
func Open(store *storage.Store, tm *txn.Manager, lm *lock.Manager, b *Binding, name string, opts Options) (*Tree, error) {
	rootPid, err := store.Root(name)
	if err != nil {
		return nil, err
	}
	t := &Tree{Name: name, lockSpace: lock.SpaceID("tsb", name), store: store, tm: tm, lm: lm, binding: b, opts: opts.normalized(), root: rootPid}
	t.clock.Store(tm.RecoveredClockHW())
	t.comp = newCompleter(t)
	b.Bind(t)
	tm.SetVersionClock(t.Now, t.tick)
	return t, nil
}

// Close drains every scheduled completion to commit (postings, GC
// sweeps, reclamation), stops the workers, and drops the cached root pin.
// Draining first means a close-then-reopen never recovers against a
// structure change that was scheduled but silently dropped.
func (t *Tree) Close() {
	t.comp.closeDrain()
	if f := t.rootf.Swap(nil); f != nil {
		t.store.Pool.Unpin(f)
	}
}

// rootFrame returns the root's frame pinned for the caller via the cache
// in t.rootf; the first call keeps one extra permanent pin.
func (t *Tree) rootFrame() (*storage.Frame, error) {
	if f := t.rootf.Load(); f != nil {
		f.Pin()
		return f, nil
	}
	f, err := t.store.Pool.Fetch(t.root)
	if err != nil {
		return nil, err
	}
	if !t.rootf.CompareAndSwap(nil, f) {
		return f, nil // lost the cache race; our fetch pin is the caller's
	}
	f.Pin()
	return f, nil
}

// DrainCompletions blocks until all scheduled completing actions ran.
func (t *Tree) DrainCompletions() { t.comp.drain() }

// Now returns the tree's current logical time; versions written later get
// strictly larger timestamps.
func (t *Tree) Now() uint64 { return t.clock.Load() }

// tick returns a fresh, strictly increasing timestamp.
func (t *Tree) tick() uint64 { return t.clock.Add(1) }

// Options returns the normalized options.
func (t *Tree) Options() Options { return t.opts }

func (t *Tree) recLockName(k keys.Key) lock.Name { return lock.KeyName(t.lockSpace, k) }

// --- operation context (CNS: one latch at a time) ---------------------------

type opCtx struct {
	t   *Tree
	txn *txn.Txn
	tr  latch.Tracker
	seq uint64
}

// newOp checks out a pooled operation context; done returns it. Pooling
// keeps the tracker's hold slice (and the context itself) off the
// per-operation allocation path.
func (t *Tree) newOp(tx *txn.Txn) *opCtx {
	o, _ := t.opPool.Get().(*opCtx)
	if o == nil {
		o = new(opCtx)
	}
	o.t = t
	o.txn = tx
	o.seq = 0
	o.tr.Reset(t.opts.CheckLatchOrder)
	return o
}

func (o *opCtx) done() {
	o.tr.AssertNoneHeld()
	o.txn = nil
	o.t.opPool.Put(o)
}

const maxLevel = 63

func (o *opCtx) rank(level int) latch.Rank {
	o.seq++
	return latch.Rank(uint64(maxLevel-level)<<40 | (o.seq & (1<<40 - 1)))
}

type nref struct {
	f    *storage.Frame
	n    *Node
	mode latch.Mode
}

func (r *nref) pid() storage.PageID { return r.f.ID }

func (o *opCtx) acquire(pid storage.PageID, mode latch.Mode, level int) (nref, error) {
	f, err := o.t.store.Pool.Fetch(pid)
	if err != nil {
		return nref{}, err
	}
	f.Latch.Acquire(mode)
	o.tr.Acquired(&f.Latch, o.rank(level), mode)
	n, ok := f.Data.(*Node)
	if !ok {
		o.tr.Released(&f.Latch)
		f.Latch.Release(mode)
		o.t.store.Pool.Unpin(f)
		return nref{}, fmt.Errorf("tsb: page %d holds %T, not a node", pid, f.Data)
	}
	return nref{f: f, n: n, mode: mode}, nil
}

func (o *opCtx) release(r *nref) {
	if r.f == nil {
		return
	}
	o.tr.Released(&r.f.Latch)
	r.f.Latch.Release(r.mode)
	o.t.store.Pool.Unpin(r.f)
	r.f = nil
	r.n = nil
}

func (o *opCtx) promote(r *nref) {
	r.f.Latch.Promote()
	o.tr.Promoted(&r.f.Latch)
	r.mode = latch.X
}

// step releases cur and acquires pid. Without reclamation no coupling is
// needed (CNS: nodes are immortal, a saved pointer always names a live
// node). With Options.Reclaim the target of a saved pointer may have been
// freed — and its page recycled — between the release and the acquire, so
// the step latch-couples: the reaper removes a page's last reference
// under the referencer's X latch before freeing, so a reader holding the
// source while acquiring the target either passes before the cut or
// finds the edge already gone.
func (t *Tree) step(o *opCtx, cur *nref, pid storage.PageID, mode latch.Mode, level int) (nref, error) {
	if t.opts.Reclaim {
		next, err := o.acquire(pid, mode, level)
		o.release(cur)
		return next, err
	}
	o.release(cur)
	return o.acquire(pid, mode, level)
}

// descend walks from the root to the node at stopLevel whose directly
// contained rectangle includes (k, time), latched in finalMode. Sibling
// traversals at any level schedule the corresponding completing posting
// when sched is true. Interior levels are navigated optimistically
// (version-validated snapshot reads, no latches); after bounded
// validation failures the descent falls back to the latched path.
func (t *Tree) descend(o *opCtx, k keys.Key, time uint64, stopLevel int, finalMode latch.Mode, sched bool) (nref, error) {
	if !t.opts.PessimisticDescent {
		if r, err, ok := t.descendOptimistic(o, k, time, stopLevel, finalMode, sched); ok {
			return r, err
		}
		t.Stats.OptimisticFallbacks.Add(1)
	}
	return t.descendLatched(o, k, time, stopLevel, finalMode, sched)
}

// descendLatched is the fully latched descent (CNS: one latch at a
// time).
func (t *Tree) descendLatched(o *opCtx, k keys.Key, time uint64, stopLevel int, finalMode latch.Mode, sched bool) (nref, error) {
	cur, err := o.acquire(t.root, latch.S, maxLevel)
	if err != nil {
		return nref{}, err
	}
	if cur.n.Level < stopLevel {
		o.release(&cur)
		return nref{}, errLevelGone
	}
	if cur.n.Level == stopLevel && finalMode != latch.S {
		lvl := cur.n.Level
		o.release(&cur)
		cur, err = o.acquire(t.root, finalMode, lvl)
		if err != nil {
			return nref{}, err
		}
		if cur.n.Level != stopLevel {
			o.release(&cur)
			return nref{}, errRetry
		}
	}
	return t.descendFrom(o, cur, k, time, stopLevel, finalMode, sched)
}

// descendFrom continues a latched descent from cur (already latched, at
// or above stopLevel). The optimistic descent also lands here for the
// final level's sibling traversals, which always run latched.
func (t *Tree) descendFrom(o *opCtx, cur nref, k keys.Key, time uint64, stopLevel int, finalMode latch.Mode, sched bool) (nref, error) {
	for {
		// Key-sibling traversal (any level).
		for !cur.n.Rect.ContainsKey(k) {
			if cur.n.Rect.KeyLow != nil && keys.Compare(k, cur.n.Rect.KeyLow) < 0 {
				o.release(&cur)
				return nref{}, errRetry
			}
			sib := cur.n.KeySib
			if sib == storage.NilPage {
				o.release(&cur)
				return nref{}, errRetry
			}
			t.Stats.KeySibWalks.Add(1)
			if sched {
				t.noteKeySibling(cur.n, cur.pid())
			}
			next, err := t.step(o, &cur, sib, cur.mode, cur.n.Level)
			if err != nil {
				return nref{}, err
			}
			cur = next
		}
		// History-sibling traversal (data level only; index nodes span
		// all time).
		for cur.n.IsData() && time < cur.n.Rect.TimeLow {
			hist := cur.n.HistSib
			if hist == storage.NilPage {
				// No history before the tree existed: land here.
				break
			}
			t.Stats.HistSibWalks.Add(1)
			if sched {
				t.noteHistSibling(cur.n)
			}
			next, err := t.step(o, &cur, hist, cur.mode, cur.n.Level)
			if err != nil {
				return nref{}, err
			}
			cur = next
			// A history node's key range can be wider than the search
			// path suggests; keys stay inside by construction.
		}
		if cur.n.Level == stopLevel {
			return cur, nil
		}
		var child storage.PageID
		if cur.n.Level == 1 {
			e, ok := cur.n.chooseTerm(k, time)
			if !ok {
				o.release(&cur)
				return nref{}, errRetry
			}
			child = e.Child
		} else {
			e, ok := cur.n.keyChildFor(k)
			if !ok {
				o.release(&cur)
				return nref{}, errRetry
			}
			child = e.Child
		}
		childLevel := cur.n.Level - 1
		childMode := latch.S
		if childLevel == stopLevel {
			childMode = finalMode
		}
		next, err := t.step(o, &cur, child, childMode, childLevel)
		if err != nil {
			return nref{}, err
		}
		cur = next
	}
}

// --- optimistic descent ------------------------------------------------------

// optRetries bounds full-descent restarts after validation failures
// before the operation falls back to the latched path.
const optRetries = 3

// navRef is an unlatched, pinned view of a node: an immutable snapshot n
// proved current at latch version v. The pin keeps the frame (and its
// version counter) from being recycled while the reference is live.
type navRef struct {
	f *storage.Frame
	n *Node
	v uint64
}

// optCounters accumulates a descent's snapshot-read outcomes locally;
// the shared Stats words are touched once per operation, not per level.
type optCounters struct {
	hits    int64
	retries int64
}

// navLoad returns a validated snapshot of the pinned frame f; see the
// core package's navLoad for the protocol. ok is false when the frame
// does not hold a node (the caller falls back to the latched path).
func (t *Tree) navLoad(f *storage.Frame, c *optCounters) (navRef, bool) {
	if data, pub, ok := f.NavSnapshot(); ok {
		if v, quiet := f.Latch.OptimisticRead(); quiet && v == pub {
			n, isNode := data.(*Node)
			if !isNode {
				return navRef{}, false
			}
			c.hits++
			return navRef{f: f, n: n, v: v}, true
		}
		c.retries++
	}
	f.Latch.AcquireS()
	n, isNode := f.Data.(*Node)
	if !isNode {
		f.Latch.ReleaseS()
		return navRef{}, false
	}
	snap := n.clone()
	v := f.Latch.Version()
	f.PublishNav(snap, v)
	f.Latch.ReleaseS()
	return navRef{f: f, n: snap, v: v}, true
}

// descendOptimistic runs bounded optimistic passes from the root; ok is
// false when the budget is exhausted and the caller must fall back.
func (t *Tree) descendOptimistic(o *opCtx, k keys.Key, time uint64, stopLevel int, finalMode latch.Mode, sched bool) (nref, error, bool) {
	var c optCounters
	r, err, ok := nref{}, error(nil), false
	for attempt := 0; attempt <= optRetries; attempt++ {
		var done bool
		r, err, done = t.optPass(o, &c, k, time, stopLevel, finalMode, sched)
		if done {
			ok = true
			break
		}
	}
	if c.hits > 0 {
		t.Stats.OptimisticHits.Add(c.hits)
	}
	if c.retries > 0 {
		t.Stats.OptimisticRetries.Add(c.retries)
	}
	return r, err, ok
}

// optPass is one optimistic descent from the root. The TSB tree obeys
// the CNS invariant — nodes never move and index nodes are never
// de-allocated — so a pointer read from a validated snapshot always
// names a live node and no source re-validation is needed after
// following it: a stale snapshot routes exactly like a slightly earlier
// latched reader, and sibling pointers make every well-formed state
// navigable. Validation here only bounds staleness (navLoad refreshes a
// snapshot whose version moved). The one exception is the final
// level-1→data edge under Options.Reclaim: data pages CAN then be freed
// and recycled, so after latching the child the source snapshot is
// re-validated, exactly like the core (CP) tree's final edge — a stale
// term in an old snapshot must not hand back a recycled page. The final
// node is latched in finalMode; history-sibling walks happen only at the
// data level, which is the stop level for every data access, so they
// always run latched in descendFrom.
func (t *Tree) optPass(o *opCtx, c *optCounters, k keys.Key, time uint64, stopLevel int, finalMode latch.Mode, sched bool) (nref, error, bool) {
	pool := t.store.Pool
	f, err := t.rootFrame()
	if err != nil {
		return nref{}, err, true
	}
	cur, ok := t.navLoad(f, c)
	if !ok {
		pool.Unpin(f)
		return nref{}, nil, false
	}
	if cur.n.Level < stopLevel {
		pool.Unpin(f)
		return nref{}, errLevelGone, true
	}
	if cur.n.Level == stopLevel {
		// The root is the target: latch it and re-check like the latched
		// path does (the root never moves).
		lvl := cur.n.Level
		pool.Unpin(f)
		r, err := o.acquire(t.root, finalMode, lvl)
		if err != nil {
			return nref{}, err, true
		}
		if r.n.Level != stopLevel {
			o.release(&r)
			return nref{}, errRetry, true
		}
		r2, err := t.descendFrom(o, r, k, time, stopLevel, finalMode, sched)
		return r2, err, true
	}

	for {
		// Key-sibling traversal on validated snapshots. (History-sibling
		// walks never occur here: they exist only at the data level.)
		if !cur.n.Rect.ContainsKey(k) {
			if cur.n.Rect.KeyLow != nil && keys.Compare(k, cur.n.Rect.KeyLow) < 0 {
				pool.Unpin(cur.f)
				return nref{}, errRetry, true
			}
			sib := cur.n.KeySib
			if sib == storage.NilPage {
				pool.Unpin(cur.f)
				return nref{}, errRetry, true
			}
			t.Stats.KeySibWalks.Add(1)
			if sched {
				t.noteKeySibling(cur.n, cur.f.ID)
			}
			next, err, done := t.optStep(cur, c, sib, cur.n.Level)
			if !done {
				return nref{}, nil, false
			}
			if err != nil {
				return nref{}, err, true
			}
			cur = next
			continue
		}

		var child storage.PageID
		if cur.n.Level == 1 {
			e, ok := cur.n.chooseTerm(k, time)
			if !ok {
				pool.Unpin(cur.f)
				return nref{}, errRetry, true
			}
			child = e.Child
		} else {
			e, ok := cur.n.keyChildFor(k)
			if !ok {
				pool.Unpin(cur.f)
				return nref{}, errRetry, true
			}
			child = e.Child
		}
		childLevel := cur.n.Level - 1
		if childLevel == stopLevel {
			// Final edge: latch the child in finalMode. Without Reclaim no
			// source validation is needed — the child is immortal. With it,
			// the term may be stale and the page freed or recycled: prove
			// the source snapshot still current after the acquire (and
			// blame staleness, not I/O, for a failed fetch) before
			// trusting the child.
			r, err := o.acquire(child, finalMode, childLevel)
			if t.opts.Reclaim {
				if err != nil {
					stale := !cur.f.Latch.Validate(cur.v)
					pool.Unpin(cur.f)
					if stale {
						return nref{}, nil, false
					}
					return nref{}, err, true
				}
				if !cur.f.Latch.Validate(cur.v) {
					o.release(&r)
					pool.Unpin(cur.f)
					return nref{}, nil, false
				}
			}
			pool.Unpin(cur.f)
			if err != nil {
				return nref{}, err, true
			}
			if r.n.Level != stopLevel {
				o.release(&r)
				return nref{}, nil, false
			}
			r2, err := t.descendFrom(o, r, k, time, stopLevel, finalMode, sched)
			return r2, err, true
		}
		next, err, done := t.optStep(cur, c, child, childLevel)
		if !done {
			return nref{}, nil, false
		}
		if err != nil {
			return nref{}, err, true
		}
		cur = next
	}
}

// optStep follows one edge from cur to pid (expected at level). cur's
// pin is consumed. CNS: the target is immortal, so no source
// re-validation is performed after loading it. done=false aborts the
// pass (non-node frame or defensive level mismatch).
func (t *Tree) optStep(cur navRef, c *optCounters, pid storage.PageID, level int) (navRef, error, bool) {
	pool := t.store.Pool
	pool.Unpin(cur.f)
	nf, err := pool.Fetch(pid)
	if err != nil {
		return navRef{}, err, true
	}
	next, ok := t.navLoad(nf, c)
	if !ok {
		pool.Unpin(nf)
		return navRef{}, nil, false
	}
	if next.n.Level != level {
		pool.Unpin(nf)
		return navRef{}, nil, false
	}
	return next, nil, true
}

func (t *Tree) retryLoop(fn func() error) error {
	for {
		err := fn()
		if errors.Is(err, errRetry) {
			t.Stats.Restarts.Add(1)
			continue
		}
		return err
	}
}

// --- public operations -------------------------------------------------------

// Put writes a new version of key with value, timestamped now. With a nil
// transaction the put runs as its own atomic action.
func (t *Tree) Put(tx *txn.Txn, key keys.Key, value []byte) error {
	return t.put(tx, key, value, false)
}

// Delete writes a tombstone version of key: as-of reads at earlier times
// still see the old versions.
func (t *Tree) Delete(tx *txn.Txn, key keys.Key) error {
	return t.put(tx, key, nil, true)
}

func (t *Tree) put(tx *txn.Txn, key keys.Key, value []byte, deleted bool) error {
	t.Stats.Puts.Add(1)
	return t.retryLoop(func() error {
		o := t.newOp(tx)
		defer o.done()
		leaf, err := t.descend(o, key, NoEnd-1, 0, latch.U, true)
		if err != nil {
			return err
		}
		if !leaf.n.Current() {
			// Writes must land on a current node; an approximate descent
			// that ends in history restarts (selection makes this rare).
			o.release(&leaf)
			return errRetry
		}
		if tx != nil && !tx.TryLock(t.recLockName(key), lock.X) {
			o.release(&leaf)
			if err := tx.Lock(t.recLockName(key), lock.X); err != nil {
				return err
			}
			return errRetry
		}
		if len(leaf.n.Entries) >= t.opts.DataCapacity {
			if err := t.splitData(o, &leaf); err != nil {
				return err
			}
			return errRetry
		}
		var lg *txn.Txn
		if tx != nil {
			lg = tx
		} else {
			lg = t.tm.BeginAtomicAction()
		}
		o.promote(&leaf)
		ts := t.tick()
		var writer wal.TxnID
		if tx != nil {
			writer = tx.ID // snapshot visibility resolves it; AA puts (0) are atomic under the latch
		}
		e := Entry{Key: keys.Clone(key), Start: ts, Value: append([]byte(nil), value...), Deleted: deleted, Txn: writer}
		lsn := lg.LogUpdate(t.store.Pool.StoreID, uint64(leaf.pid()), KindPut, encPut(e))
		leaf.n.insertVersion(e)
		leaf.f.MarkDirty(lsn)
		if tx == nil {
			if cerr := lg.Commit(); cerr != nil {
				o.release(&leaf)
				return cerr
			}
		}
		o.release(&leaf)
		return nil
	})
}

// Get returns the current value of key.
func (t *Tree) Get(tx *txn.Txn, key keys.Key) ([]byte, bool, error) {
	return t.GetAsOf(tx, key, t.Now())
}

// GetAsOf returns the value of key as of time. Historical versions are
// immutable, so as-of reads below the current time need no locks; reads
// at the current time under a transaction take the record S lock.
func (t *Tree) GetAsOf(tx *txn.Txn, key keys.Key, time uint64) ([]byte, bool, error) {
	t.Stats.Gets.Add(1)
	var val []byte
	var found bool
	err := t.retryLoop(func() error {
		o := t.newOp(tx)
		defer o.done()
		leaf, err := t.descend(o, key, time, 0, latch.S, true)
		if err != nil {
			return err
		}
		if tx != nil && time >= t.Now() {
			if !tx.TryLock(t.recLockName(key), lock.S) {
				o.release(&leaf)
				if err := tx.Lock(t.recLockName(key), lock.S); err != nil {
					return err
				}
				return errRetry
			}
		}
		if i, ok := leaf.n.searchVersion(key, time); ok && !leaf.n.Entries[i].Deleted {
			val = append([]byte(nil), leaf.n.Entries[i].Value...)
			found = true
		} else {
			val, found = nil, false
		}
		o.release(&leaf)
		return nil
	})
	return val, found, err
}

// ScanAsOf calls fn for every key in [lo, hi) alive as of time, in key
// order. hi may be nil for an unbounded scan.
func (t *Tree) ScanAsOf(time uint64, lo, hi keys.Key, fn func(k keys.Key, v []byte) bool) error {
	cursor := keys.Clone(lo)
	for {
		type rec struct {
			k keys.Key
			v []byte
		}
		var batch []rec
		var next keys.Key
		done := false
		err := t.retryLoop(func() error {
			batch = batch[:0]
			o := t.newOp(nil)
			defer o.done()
			leaf, err := t.descend(o, cursor, time, 0, latch.S, true)
			if err != nil {
				return err
			}
			// The live version at `time` is, per key, the last entry with
			// Start <= time; entries are sorted by (key, start), so track
			// the current key group and flush on key change.
			var curKey keys.Key
			var curVal []byte
			curDel := false
			flush := func() {
				if curKey != nil && !curDel {
					batch = append(batch, rec{k: keys.Clone(curKey), v: append([]byte(nil), curVal...)})
				}
				curKey, curVal, curDel = nil, nil, false
			}
			for _, e := range leaf.n.Entries {
				if keys.Compare(e.Key, cursor) < 0 {
					continue
				}
				if hi != nil && keys.Compare(e.Key, hi) >= 0 {
					break
				}
				if e.Start > time {
					continue
				}
				if curKey == nil || !keys.Equal(curKey, e.Key) {
					flush()
					curKey = e.Key
				}
				curVal, curDel = e.Value, e.Deleted
			}
			flush()
			if leaf.n.Rect.KeyHigh.Unbounded {
				done = true
			} else {
				next = keys.Clone(leaf.n.Rect.KeyHigh.Key)
				if hi != nil && keys.Compare(next, hi) >= 0 {
					done = true
				}
			}
			if !done {
				// Read-ahead: the key sibling is the next leaf the scan will
				// descend to; start its disk read under this leaf's latch so
				// it overlaps the callback work on this batch.
				t.store.Pool.PrefetchAsync(leaf.n.KeySib)
			}
			o.release(&leaf)
			return nil
		})
		if err != nil {
			return err
		}
		for _, r := range batch {
			if !fn(r.k, r.v) {
				return nil
			}
		}
		if done {
			return nil
		}
		cursor = next
	}
}

// logicalUndoPut compensates a Put by removing the exact version from
// wherever it now lives. A time split performed after the put may have
// COPIED the version into a history node (alive-across versions exist in
// both nodes), so the undo walks the history chain from the current node
// back past Start, removing every copy; each removal is its own CLR with
// the same UndoNext, keeping restart idempotent.
//
// Each removal must also preserve the carryover invariant snapshot reads
// depend on: a node holds, per key it knows, the newest version older
// than its TimeLow, so "key group empty / oldest entry at or above
// TimeLow" proves no older version exists anywhere. If the version being
// undone is a node's only below-TimeLow copy of the key (a time split
// carried the doomed version), plain removal would leave the node
// asserting that older versions don't exist while a committed
// predecessor still lives in the history chain — a lock-free snapshot
// reader would then return not-found for a key it should see. The undo
// therefore fetches the predecessor from the chain first and re-carries
// it in the same X-latched mutation as the removal, so no reader ever
// observes a carry-broken node.
func (t *Tree) logicalUndoPut(rec *wal.Record, e Entry) error {
	tx, ok := t.tm.Lookup(rec.TxnID)
	if !ok {
		return fmt.Errorf("tsb: logical undo for unknown txn %d", rec.TxnID)
	}
	return t.retryLoop(func() error {
		o := t.newOp(nil)
		defer o.done()
		cur, err := t.descend(o, e.Key, NoEnd-1, 0, latch.U, false)
		if err != nil {
			return err
		}
		// Intermediate removal CLRs point back AT rec (UndoNext=rec.LSN):
		// a crash mid-undo re-runs the whole logical undo, which is
		// idempotent. Only the terminal CLR advances past rec.
		for {
			if _, ok := cur.n.versionPos(e.Key, e.Start); ok {
				// Fetch the carryover repair before mutating anything:
				// the chain walk can fail with errRetry, and the whole
				// undo must be restartable with the node still intact.
				repair, repaired, err := t.carryRepair(o, &cur, e)
				if err != nil {
					o.release(&cur)
					return err
				}
				o.promote(&cur)
				lsn := tx.LogCLR(t.store.Pool.StoreID, uint64(cur.pid()), KindRemoveVersion, encVersionRef(e.Key, e.Start), rec.LSN)
				cur.n.removeVersion(e.Key, e.Start)
				if repaired {
					lsn = tx.LogCLR(t.store.Pool.StoreID, uint64(cur.pid()), KindPut, encPut(repair), rec.LSN)
					cur.n.insertVersion(repair)
				}
				cur.f.MarkDirty(lsn)
			}
			if cur.n.Rect.TimeLow <= e.Start || cur.n.HistSib == storage.NilPage {
				break
			}
			hist := cur.n.HistSib
			next, err := t.step(o, &cur, hist, latch.U, 0)
			if err != nil {
				return err
			}
			cur = next
		}
		o.release(&cur)
		tx.LogCLR(0, 0, 0, nil, rec.PrevLSN)
		return nil
	})
}

// carryRepair decides whether removing version e from cur would break
// the carryover invariant, and if so returns a clone of the predecessor
// to re-carry: the newest surviving version of e.Key older than e.Start.
// The predecessor is found by walking the history chain from cur with
// the same stop rules snapshot reads use; chain nodes are latched S in
// newer→older order while cur stays held — the acquisition order every
// chain walker follows, so ranks ascend and no cycle can form. The walk
// latch-couples (each node held until its successor is latched): under
// Options.Reclaim a saved chain pointer may name a freed page, and the
// coupling is what serializes against the reaper's edge cut. An
// empty group or an all-at-or-above-TimeLow group in a chain node ends
// the walk: by induction that node's carryover proves nothing older
// exists (a retired node reads as empty, which is sound — retirement
// required every newer live node to carry the survivors' newest copies,
// so the predecessor would have been found before reaching it).
func (t *Tree) carryRepair(o *opCtx, cur *nref, e Entry) (Entry, bool, error) {
	if e.Start >= cur.n.Rect.TimeLow || cur.n.HistSib == storage.NilPage {
		return Entry{}, false, nil
	}
	lo, hi := keyGroup(cur.n, e.Key)
	for i := lo; i < hi; i++ {
		if cur.n.Entries[i].Start < cur.n.Rect.TimeLow && cur.n.Entries[i].Start != e.Start {
			return Entry{}, false, nil // another below-TimeLow copy remains
		}
	}
	var prev nref
	for pid := cur.n.HistSib; pid != storage.NilPage; {
		h, err := o.acquire(pid, latch.S, 0)
		o.release(&prev) // no-op on the first edge: cur itself stays held
		if err != nil {
			return Entry{}, false, err
		}
		lo, hi := keyGroup(h.n, e.Key)
		for i := hi - 1; i >= lo; i-- {
			if h.n.Entries[i].Start < e.Start {
				out := cloneEntry(h.n.Entries[i])
				o.release(&h)
				return out, true, nil
			}
		}
		if hi == lo || h.n.Entries[lo].Start >= h.n.Rect.TimeLow {
			o.release(&h)
			return Entry{}, false, nil
		}
		pid = h.n.HistSib
		prev = h
	}
	o.release(&prev)
	return Entry{}, false, nil
}
