package tsb

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/keys"
)

const testStoreID = 9

type fixture struct {
	e    *engine.Engine
	b    *Binding
	tree *Tree
}

func smallOpts() Options {
	return Options{
		DataCapacity:    8,
		IndexCapacity:   8,
		SyncCompletion:  true,
		CheckLatchOrder: true,
	}
}

func newFixture(t testing.TB, opts Options) *fixture {
	t.Helper()
	e := engine.New(engine.Options{})
	b := Register(e.Reg)
	st := e.AddStore(testStoreID, Codec{})
	tree, err := Create(st, e.TM, e.Locks, b, "versions", opts)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	t.Cleanup(tree.Close)
	return &fixture{e: e, b: b, tree: tree}
}

func (fx *fixture) crashRestart(t testing.TB) *fixture {
	t.Helper()
	img := fx.e.Crash(nil)
	fx.tree.Close()
	e2 := engine.Restarted(img, fx.e.Opts)
	b2 := Register(e2.Reg)
	st2 := e2.AttachStore(testStoreID, Codec{}, img.Disks[testStoreID])
	p, err := e2.AnalyzeAndRedo()
	if err != nil {
		t.Fatalf("analyze+redo: %v", err)
	}
	tree2, err := Open(st2, e2.TM, e2.Locks, b2, "versions", fx.tree.opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if err := e2.FinishRecovery(p); err != nil {
		t.Fatalf("undo: %v", err)
	}
	t.Cleanup(tree2.Close)
	return &fixture{e: e2, b: b2, tree: tree2}
}

func (fx *fixture) mustVerify(t testing.TB) Shape {
	t.Helper()
	fx.tree.DrainCompletions()
	shape, err := fx.tree.Verify()
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	return shape
}

// oracle tracks versions per key for as-of comparison.
type oracle struct {
	versions map[string][]ovsn // sorted by start
}

type ovsn struct {
	start   uint64
	val     string
	deleted bool
}

func newOracle() *oracle { return &oracle{versions: make(map[string][]ovsn)} }

func (o *oracle) put(k string, start uint64, val string, deleted bool) {
	o.versions[k] = append(o.versions[k], ovsn{start, val, deleted})
}

func (o *oracle) asOf(k string, t uint64) (string, bool) {
	vs := o.versions[k]
	i := sort.Search(len(vs), func(i int) bool { return vs[i].start > t })
	if i == 0 {
		return "", false
	}
	v := vs[i-1]
	if v.deleted {
		return "", false
	}
	return v.val, true
}

func TestPutGetBasics(t *testing.T) {
	fx := newFixture(t, smallOpts())
	for i := 0; i < 50; i++ {
		if err := fx.tree.Put(nil, keys.Uint64(uint64(i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < 50; i++ {
		v, ok, err := fx.tree.Get(nil, keys.Uint64(uint64(i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("get %d: %q %v %v", i, v, ok, err)
		}
	}
	if _, ok, _ := fx.tree.Get(nil, keys.Uint64(999)); ok {
		t.Fatal("found missing key")
	}
	fx.mustVerify(t)
}

func TestVersionsAndTombstones(t *testing.T) {
	fx := newFixture(t, smallOpts())
	k := keys.Uint64(7)
	if err := fx.tree.Put(nil, k, []byte("one")); err != nil {
		t.Fatal(err)
	}
	t1 := fx.tree.Now()
	if err := fx.tree.Put(nil, k, []byte("two")); err != nil {
		t.Fatal(err)
	}
	t2 := fx.tree.Now()
	if err := fx.tree.Delete(nil, k); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := fx.tree.Get(nil, k); ok {
		t.Fatal("deleted key still current")
	}
	if v, ok, _ := fx.tree.GetAsOf(nil, k, t1); !ok || string(v) != "one" {
		t.Fatalf("as of t1: %q %v", v, ok)
	}
	if v, ok, _ := fx.tree.GetAsOf(nil, k, t2); !ok || string(v) != "two" {
		t.Fatalf("as of t2: %q %v", v, ok)
	}
	if _, ok, _ := fx.tree.GetAsOf(nil, k, 0); ok {
		t.Fatal("key visible before it existed")
	}
}

func TestAsOfOracleUnderSplits(t *testing.T) {
	fx := newFixture(t, smallOpts())
	orc := newOracle()
	rng := rand.New(rand.NewSource(11))
	const nKeys = 40
	var samples []uint64

	for round := 0; round < 30; round++ {
		for j := 0; j < 10; j++ {
			ki := rng.Intn(nKeys)
			k := keys.Uint64(uint64(ki))
			if rng.Intn(6) == 0 {
				if err := fx.tree.Delete(nil, k); err != nil {
					t.Fatal(err)
				}
				orc.put(string(k), fx.tree.Now(), "", true)
			} else {
				val := fmt.Sprintf("r%d-%d", round, j)
				if err := fx.tree.Put(nil, k, []byte(val)); err != nil {
					t.Fatal(err)
				}
				orc.put(string(k), fx.tree.Now(), val, false)
			}
		}
		samples = append(samples, fx.tree.Now())
	}
	fx.tree.DrainCompletions()
	shape := fx.mustVerify(t)
	if fx.tree.Stats.TimeSplits.Load() == 0 || fx.tree.Stats.KeySplits.Load() == 0 {
		t.Fatalf("want both split kinds: time=%d key=%d",
			fx.tree.Stats.TimeSplits.Load(), fx.tree.Stats.KeySplits.Load())
	}
	if shape.HistoryNodes == 0 {
		t.Fatal("no history nodes created")
	}

	// Every sampled historical time must agree with the oracle.
	for _, ts := range samples {
		for ki := 0; ki < nKeys; ki++ {
			k := keys.Uint64(uint64(ki))
			want, wantOK := orc.asOf(string(k), ts)
			got, ok, err := fx.tree.GetAsOf(nil, k, ts)
			if err != nil {
				t.Fatal(err)
			}
			if ok != wantOK || (ok && string(got) != want) {
				t.Fatalf("asOf(%d, t=%d): got %q/%v want %q/%v", ki, ts, got, ok, want, wantOK)
			}
		}
	}
}

func TestScanAsOf(t *testing.T) {
	fx := newFixture(t, smallOpts())
	for i := 0; i < 30; i++ {
		if err := fx.tree.Put(nil, keys.Uint64(uint64(i)), []byte(fmt.Sprintf("a%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	t1 := fx.tree.Now()
	// Overwrite evens, delete multiples of 3.
	for i := 0; i < 30; i += 2 {
		if err := fx.tree.Put(nil, keys.Uint64(uint64(i)), []byte(fmt.Sprintf("b%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i += 3 {
		if err := fx.tree.Delete(nil, keys.Uint64(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Scan at t1: all 30 with "a" values.
	n := 0
	err := fx.tree.ScanAsOf(t1, nil, nil, func(k keys.Key, v []byte) bool {
		if string(v) != fmt.Sprintf("a%d", keys.ToUint64(k)) {
			t.Fatalf("t1 scan got %q for %d", v, keys.ToUint64(k))
		}
		n++
		return true
	})
	if err != nil || n != 30 {
		t.Fatalf("t1 scan: n=%d err=%v", n, err)
	}
	// Scan now: multiples of 3 gone, evens updated.
	now := fx.tree.Now()
	var got []uint64
	err = fx.tree.ScanAsOf(now, nil, nil, func(k keys.Key, v []byte) bool {
		ki := keys.ToUint64(k)
		got = append(got, ki)
		want := fmt.Sprintf("a%d", ki)
		if ki%2 == 0 {
			want = fmt.Sprintf("b%d", ki)
		}
		if string(v) != want {
			t.Fatalf("now scan got %q for %d, want %q", v, ki, want)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ki := range got {
		if ki%3 == 0 {
			t.Fatalf("deleted key %d in scan", ki)
		}
	}
	if len(got) != 20 {
		t.Fatalf("now scan: %d keys, want 20", len(got))
	}
}

func TestCrashRecoveryVersions(t *testing.T) {
	fx := newFixture(t, smallOpts())
	orc := newOracle()
	for i := 0; i < 60; i++ {
		k := keys.Uint64(uint64(i % 20))
		val := fmt.Sprintf("v%d", i)
		if err := fx.tree.Put(nil, k, []byte(val)); err != nil {
			t.Fatal(err)
		}
		orc.put(string(k), fx.tree.Now(), val, false)
	}
	mid := fx.tree.Now()
	fx.tree.DrainCompletions()
	fx.e.Log.ForceAll()
	fx2 := fx.crashRestart(t)
	fx2.mustVerify(t)
	for ki := 0; ki < 20; ki++ {
		k := keys.Uint64(uint64(ki))
		want, wantOK := orc.asOf(string(k), mid)
		got, ok, err := fx2.tree.GetAsOf(nil, k, mid)
		if err != nil || ok != wantOK || (ok && string(got) != want) {
			t.Fatalf("after restart asOf(%d): %q/%v want %q/%v err=%v", ki, got, ok, want, wantOK, err)
		}
	}
	// New writes must get strictly newer timestamps than any old version.
	if err := fx2.tree.Put(nil, keys.Uint64(0), []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := fx2.tree.Get(nil, keys.Uint64(0)); !ok || string(v) != "fresh" {
		t.Fatalf("fresh write lost: %q %v", v, ok)
	}
	if v, ok, _ := fx2.tree.GetAsOf(nil, keys.Uint64(0), mid); !ok || string(v) == "fresh" {
		t.Fatalf("fresh write leaked into the past: %q %v", v, ok)
	}
}

func TestAbortUndoesVersions(t *testing.T) {
	fx := newFixture(t, smallOpts())
	if err := fx.tree.Put(nil, keys.Uint64(1), []byte("keep")); err != nil {
		t.Fatal(err)
	}
	tx := fx.e.TM.Begin()
	for i := 0; i < 20; i++ {
		if err := fx.tree.Put(tx, keys.Uint64(uint64(i)), []byte("doomed")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	fx.tree.DrainCompletions()
	if _, err := fx.tree.Verify(); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := fx.tree.Get(nil, keys.Uint64(1)); !ok || string(v) != "keep" {
		t.Fatalf("pre-existing version: %q %v", v, ok)
	}
	for i := 0; i < 20; i++ {
		if i == 1 {
			continue
		}
		if _, ok, _ := fx.tree.Get(nil, keys.Uint64(uint64(i))); ok {
			t.Fatalf("aborted version of key %d visible", i)
		}
	}
}

func TestAbortAcrossTimeSplit(t *testing.T) {
	// A version written by an open transaction, then copied by a time
	// split, must disappear from every copy when the transaction aborts.
	fx := newFixture(t, smallOpts())
	tx := fx.e.TM.Begin()
	if err := fx.tree.Put(tx, keys.Uint64(5), []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	// Force time splits by filling the same node with other keys'
	// versions (outside the transaction).
	for i := 0; i < 40; i++ {
		if err := fx.tree.Put(nil, keys.Uint64(uint64(i%4)), []byte(fmt.Sprintf("x%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if fx.tree.Stats.TimeSplits.Load() == 0 {
		t.Skip("workload produced no time split") // policy changed; keep test honest
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	fx.tree.DrainCompletions()
	if _, err := fx.tree.Verify(); err != nil {
		t.Fatal(err)
	}
	// The doomed version must be invisible at EVERY time.
	for ts := uint64(0); ts <= fx.tree.Now(); ts++ {
		if v, ok, _ := fx.tree.GetAsOf(nil, keys.Uint64(5), ts); ok && string(v) == "doomed" {
			t.Fatalf("aborted version visible at t=%d", ts)
		}
	}
}

func TestConcurrentPuts(t *testing.T) {
	opts := smallOpts()
	opts.SyncCompletion = false
	opts.CompletionWorkers = 2
	fx := newFixture(t, opts)
	const workers = 6
	const perWorker = 150
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				k := keys.Uint64(uint64(w*1000 + i%50)) // overwrites within worker
				if err := fx.tree.Put(nil, k, []byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					errs <- fmt.Errorf("worker %d put %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	shape := fx.mustVerify(t)
	if shape.CurrentVersions == 0 {
		t.Fatal("no versions")
	}
	for w := 0; w < workers; w++ {
		for ki := 0; ki < 50; ki++ {
			k := keys.Uint64(uint64(w*1000 + ki))
			if _, ok, err := fx.tree.Get(nil, k); err != nil || !ok {
				t.Fatalf("key %d-%d missing: %v", w, ki, err)
			}
		}
	}
}

func TestClippingUnderIndexSplits(t *testing.T) {
	// Small index capacity + alternating wide history creation forces
	// level-1 splits whose boundaries cross historical rects: terms get
	// clipped into both parents, and lookups must still be exact.
	opts := smallOpts()
	opts.IndexCapacity = 4
	opts.DataCapacity = 6
	fx := newFixture(t, opts)
	orc := newOracle()
	rng := rand.New(rand.NewSource(3))
	var samples []uint64
	for i := 0; i < 600; i++ {
		ki := rng.Intn(60)
		k := keys.Uint64(uint64(ki))
		val := fmt.Sprintf("v%d", i)
		if err := fx.tree.Put(nil, k, []byte(val)); err != nil {
			t.Fatal(err)
		}
		orc.put(string(k), fx.tree.Now(), val, false)
		if i%50 == 0 {
			samples = append(samples, fx.tree.Now())
			fx.tree.DrainCompletions()
		}
	}
	shape := fx.mustVerify(t)
	if shape.Height < 3 {
		t.Fatalf("height %d; want a multi-level index", shape.Height)
	}
	if fx.tree.Stats.IndexSplits.Load() == 0 {
		t.Fatal("no index splits")
	}
	for _, ts := range samples {
		for ki := 0; ki < 60; ki++ {
			k := keys.Uint64(uint64(ki))
			want, wantOK := orc.asOf(string(k), ts)
			got, ok, err := fx.tree.GetAsOf(nil, k, ts)
			if err != nil || ok != wantOK || (ok && string(got) != want) {
				t.Fatalf("asOf(%d,%d): %q/%v want %q/%v err=%v", ki, ts, got, ok, want, wantOK, err)
			}
		}
	}
}
