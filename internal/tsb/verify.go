package tsb

import (
	"fmt"

	"repro/internal/keys"
	"repro/internal/storage"
)

// Shape summarizes a verified TSB tree.
type Shape struct {
	Height       int
	IndexNodes   int
	CurrentNodes int
	HistoryNodes int
	// Versions counts slots across data nodes (copies included: a
	// version alive across a time split exists in two nodes).
	Versions int
	// CurrentVersions counts slots in current nodes only.
	CurrentVersions int
}

// Verify checks TSB well-formedness (§2.1.3 adapted to rectangles) at a
// quiescent point:
//
//   - the current data chain partitions the key space at the current time;
//   - each current node's history chain partitions its past time range,
//     with key ranges that contain the current node's;
//   - versions lie inside their node's rectangle (keys) and start before
//     its time bound;
//   - index levels chain contiguously by key and all terms reference
//     allocated pages one level down with matching low keys.
func (t *Tree) Verify() (Shape, error) {
	var shape Shape
	pool := t.store.Pool

	// Every page the walk touches is reachable; the set feeds the store's
	// free-space cross-check at the end (no page both free and reachable).
	reachable := make(map[storage.PageID]bool)
	getNode := func(pid storage.PageID) (*Node, error) {
		f, err := pool.Fetch(pid)
		if err != nil {
			return nil, err
		}
		defer pool.Unpin(f)
		n, ok := f.Data.(*Node)
		if !ok {
			return nil, fmt.Errorf("page %d holds %T", pid, f.Data)
		}
		reachable[pid] = true
		return n, nil
	}

	root, err := getNode(t.root)
	if err != nil {
		return shape, fmt.Errorf("tsb verify: root: %w", err)
	}
	if !(root.Rect.KeyLow == nil && root.Rect.KeyHigh.Unbounded && root.Rect.TimeLow == 0 && root.Rect.TimeHigh == NoEnd) {
		return shape, fmt.Errorf("tsb verify: root rect %v not the entire space", root.Rect)
	}
	shape.Height = root.Level + 1

	// Index levels: chain by key sibling; check coverage and terms.
	leftmost := t.root
	for level := root.Level; level >= 1; level-- {
		pid := leftmost
		var prevHigh keys.Bound
		started := false
		var firstChild storage.PageID
		for pid != storage.NilPage {
			n, err := getNode(pid)
			if err != nil {
				return shape, fmt.Errorf("tsb verify: level %d at %d: %w", level, pid, err)
			}
			if n.Level != level {
				return shape, fmt.Errorf("tsb verify: page %d expected level %d, got %d", pid, level, n.Level)
			}
			if started && (prevHigh.Unbounded || !keys.Equal(prevHigh.Key, n.Rect.KeyLow)) {
				return shape, fmt.Errorf("tsb verify: level %d key gap at %d", level, pid)
			}
			if !started && n.Rect.KeyLow != nil {
				return shape, fmt.Errorf("tsb verify: leftmost of level %d starts at %x", level, n.Rect.KeyLow)
			}
			if len(n.Entries) == 0 {
				return shape, fmt.Errorf("tsb verify: empty index node %d", pid)
			}
			for i, e := range n.Entries {
				// chooseTerm binary-searches level-1 terms, so the
				// (KeyLow, TimeLow) sort order is load-bearing.
				if level == 1 && i > 0 {
					prev := n.Entries[i-1].ChildRect
					if c := keys.Compare(prev.KeyLow, e.ChildRect.KeyLow); c > 0 || (c == 0 && prev.TimeLow > e.ChildRect.TimeLow) {
						return shape, fmt.Errorf("tsb verify: node %d terms out of (KeyLow, TimeLow) order at %d", pid, i)
					}
				}
				if alloc, err := t.store.IsAllocated(e.Child); err != nil || !alloc {
					return shape, fmt.Errorf("tsb verify: term %d of node %d references unallocated page %d", i, pid, e.Child)
				}
				child, err := getNode(e.Child)
				if err != nil {
					return shape, err
				}
				if child.Level != level-1 {
					return shape, fmt.Errorf("tsb verify: term child %d level %d, want %d", e.Child, child.Level, level-1)
				}
				if level == 1 {
					if !keys.Equal(e.ChildRect.KeyLow, child.Rect.KeyLow) {
						return shape, fmt.Errorf("tsb verify: term rect %v vs child low %x", e.ChildRect, child.Rect.KeyLow)
					}
					if e.ChildRect.TimeLow > child.Rect.TimeLow && child.Rect.TimeHigh == NoEnd {
						return shape, fmt.Errorf("tsb verify: term %v starts after current child's time low %d", e.ChildRect, child.Rect.TimeLow)
					}
				} else if !keys.Equal(e.Key, child.Rect.KeyLow) {
					return shape, fmt.Errorf("tsb verify: key term %x vs child low %x", e.Key, child.Rect.KeyLow)
				}
				if !started {
					// The next level's walk starts at the leftmost
					// CURRENT child: for level 1, terms sorted by
					// (KeyLow, TimeLow) put history first, so pick the
					// leftmost term with an open time bound.
					if level == 1 {
						if e.ChildRect.KeyLow == nil && e.ChildRect.TimeHigh == NoEnd {
							firstChild = e.Child
						}
					} else if i == 0 {
						firstChild = e.Child
					}
				}
			}
			shape.IndexNodes++
			prevHigh = n.Rect.KeyHigh
			started = true
			pid = n.KeySib
		}
		if !prevHigh.Unbounded {
			return shape, fmt.Errorf("tsb verify: level %d ends bounded", level)
		}
		if firstChild == storage.NilPage {
			return shape, fmt.Errorf("tsb verify: level %d has no leftmost current child term (run DrainCompletions before verifying)", level)
		}
		leftmost = firstChild
	}

	// Data level: current chain, then each node's history chain.
	pid := leftmost
	var prevHigh keys.Bound
	started := false
	seenHist := make(map[storage.PageID]bool)
	for pid != storage.NilPage {
		n, err := getNode(pid)
		if err != nil {
			return shape, fmt.Errorf("tsb verify: data chain at %d: %w", pid, err)
		}
		if !n.IsData() || !n.Current() {
			return shape, fmt.Errorf("tsb verify: page %d in current chain: level %d rect %v", pid, n.Level, n.Rect)
		}
		if started && (prevHigh.Unbounded || !keys.Equal(prevHigh.Key, n.Rect.KeyLow)) {
			return shape, fmt.Errorf("tsb verify: current chain key gap at %d", pid)
		}
		if !started && n.Rect.KeyLow != nil {
			return shape, fmt.Errorf("tsb verify: leftmost current node starts at %x", n.Rect.KeyLow)
		}
		if err := t.verifyVersions(n, pid); err != nil {
			return shape, err
		}
		shape.CurrentNodes++
		shape.Versions += len(n.Entries)
		shape.CurrentVersions += len(n.Entries)

		// History chain: partitions [0, n.TimeLow).
		expectHigh := n.Rect.TimeLow
		hpid := n.HistSib
		for hpid != storage.NilPage {
			h, err := getNode(hpid)
			if err != nil {
				return shape, fmt.Errorf("tsb verify: history chain at %d: %w", hpid, err)
			}
			if h.Current() {
				return shape, fmt.Errorf("tsb verify: current node %d in history chain", hpid)
			}
			if h.Rect.TimeHigh != expectHigh {
				return shape, fmt.Errorf("tsb verify: history node %d time high %d, want %d", hpid, h.Rect.TimeHigh, expectHigh)
			}
			// The history node's key range contains the current node's
			// (key ranges only shrink going forward in time).
			if h.Rect.KeyLow != nil && (n.Rect.KeyLow == nil || keys.Compare(n.Rect.KeyLow, h.Rect.KeyLow) < 0) {
				return shape, fmt.Errorf("tsb verify: history node %d key range does not contain current %d", hpid, pid)
			}
			if !h.Rect.KeyHigh.Unbounded && (n.Rect.KeyHigh.Unbounded || keys.Compare(n.Rect.KeyHigh.Key, h.Rect.KeyHigh.Key) > 0) {
				return shape, fmt.Errorf("tsb verify: history node %d key high below current %d", hpid, pid)
			}
			if err := t.verifyVersions(h, hpid); err != nil {
				return shape, err
			}
			if !seenHist[hpid] {
				seenHist[hpid] = true
				shape.HistoryNodes++
				shape.Versions += len(h.Entries)
			}
			expectHigh = h.Rect.TimeLow
			if h.Rect.TimeLow == 0 {
				break
			}
			hpid = h.HistSib
		}
		// Reclamation frees fully-retired chain tails, so under it a
		// truncated (even empty) history chain is legitimate.
		if expectHigh != 0 && n.HistSib == storage.NilPage && n.Rect.TimeLow != 0 && !t.opts.Reclaim {
			return shape, fmt.Errorf("tsb verify: current node %d has time low %d but no history", pid, n.Rect.TimeLow)
		}

		prevHigh = n.Rect.KeyHigh
		started = true
		pid = n.KeySib
	}
	if !prevHigh.Unbounded {
		return shape, fmt.Errorf("tsb verify: current chain ends bounded")
	}
	if err := t.store.SpaceCheck(reachable); err != nil {
		return shape, fmt.Errorf("tsb verify: %w", err)
	}
	return shape, nil
}

func (t *Tree) verifyVersions(n *Node, pid storage.PageID) error {
	for i, e := range n.Entries {
		if !n.Rect.ContainsKey(e.Key) {
			return fmt.Errorf("tsb verify: node %d version %x outside key range %v", pid, e.Key, n.Rect)
		}
		if e.Start >= n.Rect.TimeHigh {
			return fmt.Errorf("tsb verify: node %d version (%x,%d) at/after time high %d", pid, e.Key, e.Start, n.Rect.TimeHigh)
		}
		if i > 0 {
			c := keys.Compare(n.Entries[i-1].Key, e.Key)
			if c > 0 || (c == 0 && n.Entries[i-1].Start >= e.Start) {
				return fmt.Errorf("tsb verify: node %d versions out of order at %d", pid, i)
			}
		}
	}
	return nil
}
