package txn

import (
	"sync/atomic"
	"testing"

	"repro/internal/lock"
	"repro/internal/storage"
	"repro/internal/wal"
)

// BenchmarkParallelCommit measures the user-commit path under concurrent
// committers: each iteration is one single-update transaction ending in a
// durable commit.
func BenchmarkParallelCommit(b *testing.B) {
	log := wal.New()
	reg := storage.NewRegistry()
	registerCounter(reg)
	lm := lock.NewManager()
	tm := NewManager(log, lm, reg, Options{})
	pool := storage.NewPool(256, storage.NewDisk(), log, counterCodec{}, 0)
	reg.AddPool(pool)
	e := &env{log: log, reg: reg, lm: lm, tm: tm, pool: pool}

	var nextPid atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		pid := storage.PageID(nextPid.Add(1))
		for pb.Next() {
			t := tm.Begin()
			e.add(t, pid, 1)
			if err := t.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	})
	_, flushes := log.Stats()
	b.ReportMetric(float64(flushes)/float64(b.N), "forces/commit")
}
