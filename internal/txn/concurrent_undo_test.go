package txn

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/lock"
	"repro/internal/storage"
	"repro/internal/wal"
)

// fourThreads lifts GOMAXPROCS so the rollback goroutines run on real OS
// threads even on a single-core host: kernel preemption can then land
// between a CLR's append and its apply, which is the window the undo
// latch protocol closes. Returns a restore func.
func fourThreads() func() {
	old := runtime.GOMAXPROCS(4)
	return func() { runtime.GOMAXPROCS(old) }
}

// Concurrent rollbacks compensating on the same page must not lose
// updates: undoOne latches the page before appending the CLR and holds
// the latch across the apply, so per-page append order equals apply order
// and the pageLSN guard can never mistake a concurrent transaction's
// later CLR for its own record. These tests pin that protocol — once for
// live aborts, once for restart-style Adopt+RollbackLoser, which is how
// recovery's parallel undo workers drive this package.

func TestConcurrentAbortsSharedPage(t *testing.T) {
	defer fourThreads()()
	e := newEnv(t, Options{})
	const shared = storage.PageID(5)
	base := e.tm.Begin()
	e.add(base, shared, 1000)
	if err := base.Commit(); err != nil {
		t.Fatal(err)
	}

	const n = 8
	txns := make([]*Txn, n)
	for i := range txns {
		txns[i] = e.tm.Begin()
		// Each aborter compensates on the shared page and a private one.
		e.add(txns[i], shared, int64(10+i))
		e.add(txns[i], storage.PageID(100+i), int64(i+1))
	}
	var wg sync.WaitGroup
	for _, tx := range txns {
		wg.Add(1)
		go func(tx *Txn) {
			defer wg.Done()
			if err := tx.Abort(); err != nil {
				t.Error(err)
			}
		}(tx)
	}
	wg.Wait()
	if got := e.value(t, shared); got != 1000 {
		t.Fatalf("shared page = %d after concurrent aborts, want 1000", got)
	}
	for i := 0; i < n; i++ {
		if got := e.value(t, storage.PageID(100+i)); got != 0 {
			t.Fatalf("private page %d = %d after abort, want 0", 100+i, got)
		}
	}
}

func TestConcurrentAdoptRollbackLosers(t *testing.T) {
	defer fourThreads()()
	e := newEnv(t, Options{})
	const shared = storage.PageID(7)
	const n = 6
	type loser struct {
		id      wal.TxnID
		lastLSN wal.LSN
	}
	losers := make([]loser, n)
	for i := range losers {
		tx := e.tm.Begin()
		e.add(tx, shared, int64(5+i))
		e.add(tx, storage.PageID(200+i), 1)
		losers[i] = loser{id: tx.ID, lastLSN: tx.LastLSN()}
	}
	e.log.ForceAll()

	// Restart environment over the stable state, as recovery builds it.
	log2 := wal.NewFromImage(e.log.CrashImage(nil))
	reg2 := storage.NewRegistry()
	registerCounter(reg2)
	tm2 := NewManager(log2, lock.NewManager(), reg2, Options{})
	pool2 := storage.NewPool(1, e.pool.Disk().Snapshot(), log2, counterCodec{}, 0)
	reg2.AddPool(pool2)

	// Repeat history first (all updates were forced, pages never flushed).
	img := log2.FullImage()
	img.Scan(wal.NilLSN, func(rec wal.Record) bool {
		if rec.Type == wal.RecUpdate {
			if err := reg2.ApplyRedo(&rec); err != nil {
				t.Error(err)
				return false
			}
		}
		return true
	})

	// Adopt and roll back every loser concurrently, like restart's undo
	// worker pool does.
	var wg sync.WaitGroup
	for _, l := range losers {
		wg.Add(1)
		go func(l loser) {
			defer wg.Done()
			tx := tm2.Adopt(l.id, false, l.lastLSN)
			if err := tx.RollbackLoser(); err != nil {
				t.Error(err)
			}
		}(l)
	}
	wg.Wait()

	f, err := pool2.FetchOrCreate(shared)
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Unpin(f)
	if f.Data != nil && f.Data.(*counter).v != 0 {
		t.Fatalf("shared page = %d after concurrent loser rollback, want 0", f.Data.(*counter).v)
	}
	if tm2.ActiveCount() != 0 {
		t.Fatalf("%d transactions still active after rollback", tm2.ActiveCount())
	}
}
