package txn

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/lock"
	"repro/internal/storage"
	"repro/internal/wal"
)

// blockSink is a StableSink whose Commit (the fsync) parks until the
// gate is closed, freezing the flush pipeline's sync stage mid-flight.
type blockSink struct {
	gate chan struct{}
	mu   sync.Mutex
	sync int
}

func (b *blockSink) Persist(from wal.LSN, p []byte) error { return nil }

func (b *blockSink) Commit() error {
	<-b.gate
	b.mu.Lock()
	b.sync++
	b.mu.Unlock()
	return nil
}

// TestELRReleasesLocksBeforeStable: under early lock release a writer's
// locks come free as soon as its commit record is in the log buffer,
// while its Commit call stays parked until the record is stable.
//
// TestELRReaderParksUntilWriterStable is the naive-ELR regression: a
// read-only transaction that observed early-released state has nothing
// of its own to force — its "own force" completes trivially first — but
// its ack must still wait for the writer's commit LSN to become stable.
func TestELRReaderParksUntilWriterStable(t *testing.T) {
	e := newEnv(t, Options{EarlyLockRelease: true})
	sink := &blockSink{gate: make(chan struct{})}
	e.log.SetSink(sink)

	name := lock.KeyName(1, []byte("elr"))
	writer := e.tm.Begin()
	if err := writer.Lock(name, lock.X); err != nil {
		t.Fatal(err)
	}
	e.add(writer, storage.PageID(1), 1)

	writerDone := make(chan error, 1)
	go func() { writerDone <- writer.Commit() }()

	// Early lock release: the reader acquires the writer's lock while
	// the writer's commit is still parked in the blocked sync stage.
	reader := e.tm.Begin()
	deadline := time.Now().Add(5 * time.Second)
	for !reader.TryLock(name, lock.S) {
		if time.Now().After(deadline) {
			t.Fatal("reader never acquired the early-released lock")
		}
		runtime.Gosched()
	}
	select {
	case err := <-writerDone:
		t.Fatalf("writer commit returned (%v) before its record was stable", err)
	default:
	}

	readerDone := make(chan error, 1)
	go func() { readerDone <- reader.Commit() }()

	// The reader is read-only, so a naive ELR acks it immediately. The
	// commit dependency must hold the ack while the writer's LSN is
	// unstable.
	select {
	case err := <-readerDone:
		t.Fatalf("reader acked (%v) while the observed commit was unstable", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(sink.gate)
	if err := <-writerDone; err != nil {
		t.Fatalf("writer commit: %v", err)
	}
	if err := <-readerDone; err != nil {
		t.Fatalf("reader commit: %v", err)
	}
	// Both acks implied stability: the stable prefix covers the writer's
	// commit record (its lastLSN is now the end record, appended after).
	if e.log.StableLSN() <= 1 {
		t.Fatal("nothing became stable")
	}
	if v := e.value(t, storage.PageID(1)); v != 1 {
		t.Fatalf("page value %d, want 1", v)
	}
}

// TestELRUpdateDependentParksToo: an update transaction that read
// early-released state commits with its own record; its force target
// must cover max(ownLSN, depLSN). With stability a prefix this is
// automatic — the regression here is that the dependent's ack never
// lands while the log is still parked before the writer's record.
func TestELRUpdateDependentParksToo(t *testing.T) {
	e := newEnv(t, Options{EarlyLockRelease: true})
	sink := &blockSink{gate: make(chan struct{})}
	e.log.SetSink(sink)

	name := lock.KeyName(1, []byte("chain"))
	w1 := e.tm.Begin()
	if err := w1.Lock(name, lock.X); err != nil {
		t.Fatal(err)
	}
	e.add(w1, storage.PageID(2), 1)
	w1Done := make(chan error, 1)
	go func() { w1Done <- w1.Commit() }()

	w2 := e.tm.Begin()
	deadline := time.Now().Add(5 * time.Second)
	for !w2.TryLock(name, lock.X) {
		if time.Now().After(deadline) {
			t.Fatal("second writer never acquired the early-released lock")
		}
		runtime.Gosched()
	}
	e.add(w2, storage.PageID(2), 10)
	w2Done := make(chan error, 1)
	go func() { w2Done <- w2.Commit() }()

	select {
	case err := <-w1Done:
		t.Fatalf("first writer acked (%v) before stability", err)
	case err := <-w2Done:
		t.Fatalf("dependent writer acked (%v) before stability", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(sink.gate)
	if err := <-w1Done; err != nil {
		t.Fatal(err)
	}
	if err := <-w2Done; err != nil {
		t.Fatal(err)
	}
	if v := e.value(t, storage.PageID(2)); v != 11 {
		t.Fatalf("page value %d, want 11", v)
	}
}

// TestELROffHoldsLocksAcrossForce: with EarlyLockRelease disabled (the
// serial baseline), the lock stays held until after the force — a
// second transaction cannot acquire it while the commit is parked.
func TestELROffHoldsLocksAcrossForce(t *testing.T) {
	e := newEnv(t, Options{})
	sink := &blockSink{gate: make(chan struct{})}
	e.log.SetSink(sink)

	name := lock.KeyName(1, []byte("held"))
	writer := e.tm.Begin()
	if err := writer.Lock(name, lock.X); err != nil {
		t.Fatal(err)
	}
	e.add(writer, storage.PageID(3), 1)
	writerDone := make(chan error, 1)
	go func() { writerDone <- writer.Commit() }()

	// Give the commit time to reach the parked sync stage, then verify
	// the lock is still held.
	time.Sleep(50 * time.Millisecond)
	probe := e.tm.Begin()
	if probe.TryLock(name, lock.S) {
		t.Fatal("lock released before stability with EarlyLockRelease off")
	}
	close(sink.gate)
	if err := <-writerDone; err != nil {
		t.Fatal(err)
	}
	if !probe.TryLock(name, lock.S) {
		t.Fatal("lock not released after commit completed")
	}
	if err := probe.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestELRDepBookkeepingZeroAlloc: folding inherited commit dependencies
// into the transaction on the lock hot path must not allocate.
func TestELRDepBookkeepingZeroAlloc(t *testing.T) {
	e := newEnv(t, Options{EarlyLockRelease: true})
	names := make([]lock.Name, 4)
	for i := range names {
		names[i] = lock.PageName(7, uint64(i))
	}
	reader := e.tm.Begin()
	defer func() { _ = reader.Commit() }()
	// Warm the lock tables.
	for i := 0; i < 50; i++ {
		for _, n := range names {
			if !reader.TryLock(n, lock.S) {
				t.Fatal("uncontended TryLock failed")
			}
		}
		e.lm.ReleaseAll(reader.ID)
	}
	avg := testing.AllocsPerRun(200, func() {
		for _, n := range names {
			if !reader.TryLock(n, lock.S) {
				panic("uncontended TryLock failed")
			}
		}
		e.lm.ReleaseAll(reader.ID)
	})
	if avg != 0 {
		t.Fatalf("dep fold on lock path allocates %.1f objects per run, want 0", avg)
	}
}
