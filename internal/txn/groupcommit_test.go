package txn

import (
	"sync"
	"testing"

	"repro/internal/storage"
)

// TestGroupCommitSharesForces: with many transactions committing
// concurrently, the commit path's ForceGroup coalesces their forces, so
// the physical flush count lands well below the commit count while
// every commit still returns durable.
func TestGroupCommitSharesForces(t *testing.T) {
	e := newEnv(t, Options{})
	const committers = 8
	const perG = 40
	_, flushesBefore := e.log.Stats()
	var start, wg sync.WaitGroup
	start.Add(1)
	errs := make(chan error, committers)
	for g := 0; g < committers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			start.Wait()
			for i := 0; i < perG; i++ {
				tx := e.tm.Begin()
				e.add(tx, storage.PageID(g+1), 1)
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	start.Done()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	const commits = committers * perG
	_, flushesAfter := e.log.Stats()
	flushes := flushesAfter - flushesBefore
	if flushes >= commits {
		t.Fatalf("flushes = %d for %d commits; commits are not sharing forces", flushes, commits)
	}
	requests, rounds := e.log.GroupCommitStats()
	if requests != commits {
		t.Fatalf("group-commit requests = %d, want %d", requests, commits)
	}
	t.Logf("commits=%d flushes=%d rounds=%d (%.3f forces/commit)",
		commits, flushes, rounds, float64(flushes)/float64(commits))
	for g := 0; g < committers; g++ {
		if v := e.value(t, storage.PageID(g+1)); v != perG {
			t.Fatalf("page %d = %d, want %d", g+1, v, perG)
		}
	}
}

// TestGroupCommitAANeverForces: relative durability survives the group
// commit rewrite — a workload of only atomic actions performs zero
// forces, concurrently or not.
func TestGroupCommitAANeverForces(t *testing.T) {
	e := newEnv(t, Options{})
	_, flushesBefore := e.log.Stats()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				aa := e.tm.BeginAtomicAction()
				e.add(aa, storage.PageID(g+1), 1)
				if err := aa.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if _, flushesAfter := e.log.Stats(); flushesAfter != flushesBefore {
		t.Fatalf("atomic actions forced the log %d times; relative durability broken",
			flushesAfter-flushesBefore)
	}
	if requests, _ := e.log.GroupCommitStats(); requests != 0 {
		t.Fatalf("atomic actions registered %d group-commit requests", requests)
	}
}
