// Snapshot isolation over transaction time. A snapshot captures, in one
// critical section, the version clock's current value and the set of user
// transactions in flight at that instant. Reads through the snapshot then
// need no locks, ever: every version carries its writer's transaction ID
// and start time, and the visibility predicate — newest version with
// Start <= ts whose writer was not in flight at capture — is stable
// against everything concurrent writers do afterwards. Writers that were
// active at capture are invisible wholesale (even if they commit a tick
// later); writers that finished before capture are visible wholesale
// (their commit tick, and hence all their version starts, precede the
// captured ts). A transaction that has appended its commit record but not
// yet released its locks is treated as in flight, which is safe: strict
// two-phase locking means no transaction that finished before capture can
// depend on its writes, so the snapshot still observes a transaction-
// consistent committed prefix.
package txn

import (
	"math"

	"repro/internal/wal"
)

// Snapshot is a stable read view over transaction time. It is free of
// locks and latches; Release it when done so version garbage collection
// can advance past it.
type Snapshot struct {
	mgr *Manager
	id  uint64
	ts  uint64
	// self is the reading transaction's ID (0 for a pure reader): its own
	// writes are visible regardless of their start times.
	self wal.TxnID
	// inflight holds the user transactions active at capture; their
	// versions are invisible. nil when nothing was in flight.
	inflight map[wal.TxnID]struct{}
	// pin is the version-time bound this snapshot holds against garbage
	// collection: min(ts, the smallest begin clock among the in-flight
	// set). ts alone is NOT enough. Every version this snapshot skips is
	// either newer than ts or written by an in-flight transaction (whose
	// starts exceed its begin clock), so every skipped version starts
	// strictly above pin — and the version the snapshot needs instead is
	// only ever the newest one below a skipped one. An in-flight writer
	// may commit right after capture and leave the active set; without
	// folding its begin clock in here, the horizon would jump to ts and
	// GC could reclaim the predecessor versions the snapshot still reads
	// around the committed-but-invisible writer.
	pin uint64
}

// SetVersionClock attaches the version clock the manager stamps commit
// records with and captures snapshots against. now reads the clock, tick
// advances it. Must be called before the manager is used concurrently
// (the tree's Create/Open does so); with no clock attached, commit
// records carry no timestamp and snapshots capture ts 0.
func (m *Manager) SetVersionClock(now, tick func() uint64) {
	m.mu.Lock()
	m.clockNow = now
	m.clockTick = tick
	m.mu.Unlock()
}

// clockNowLocked reads the version clock; callers hold m.mu.
func (m *Manager) clockNowLocked() uint64 {
	if m.clockNow == nil {
		return 0
	}
	return m.clockNow()
}

// BeginSnapshot captures a snapshot: the read timestamp and the in-flight
// set are taken inside one critical section, so no commit can land
// between them and the set is exact for the captured instant. self may be
// nil (a pure reader) or the transaction that will read through the
// snapshot (its own writes become visible to it).
func (m *Manager) BeginSnapshot(self *Txn) *Snapshot {
	s := &Snapshot{mgr: m}
	if self != nil {
		s.self = self.ID
	}
	m.mu.Lock()
	s.ts = m.clockNowLocked()
	s.pin = s.ts
	for id, t := range m.active {
		if t.System {
			continue // atomic actions commit under the page latch; their versions carry txn ID 0
		}
		if s.inflight == nil {
			s.inflight = make(map[wal.TxnID]struct{}, len(m.active))
		}
		s.inflight[id] = struct{}{}
		if t.beginClock < s.pin {
			s.pin = t.beginClock
		}
	}
	m.snapSeq++
	s.id = m.snapSeq
	if m.snaps == nil {
		m.snaps = make(map[uint64]*Snapshot)
	}
	m.snaps[s.id] = s
	m.updateOldestLocked()
	m.mu.Unlock()
	return s
}

// Release drops the snapshot from the live set, letting the garbage
// collection horizon advance past it. Safe to call more than once.
func (s *Snapshot) Release() {
	m := s.mgr
	m.mu.Lock()
	if _, live := m.snaps[s.id]; live {
		delete(m.snaps, s.id)
		m.updateOldestLocked()
	}
	m.mu.Unlock()
}

// TS returns the snapshot's read timestamp.
func (s *Snapshot) TS() uint64 { return s.ts }

// Visible reports whether a version written by txnID with the given start
// time is visible to the snapshot. Zero-allocation; safe for concurrent
// use (the snapshot is immutable after capture).
func (s *Snapshot) Visible(txnID wal.TxnID, start uint64) bool {
	if txnID != 0 && txnID == s.self {
		return true // own write
	}
	if start > s.ts {
		return false
	}
	if txnID == 0 {
		return true // atomic-action write, committed under the page latch
	}
	_, in := s.inflight[txnID]
	return !in
}

// updateOldestLocked recomputes the oldest live snapshot timestamp;
// callers hold m.mu. Zero means no snapshot is live.
func (m *Manager) updateOldestLocked() {
	oldest := uint64(0)
	for _, s := range m.snaps {
		if oldest == 0 || s.ts < oldest {
			oldest = s.ts
		}
	}
	m.oldestTS.Store(oldest)
}

// Watermarks returns the atomic pair the snapshot machinery maintains:
// the oldest live snapshot's read timestamp (0 when none is live) and the
// newest user-commit timestamp known stable (forced to the log).
func (m *Manager) Watermarks() (oldestSnapshot, newestStable uint64) {
	return m.oldestTS.Load(), m.stableTS.Load()
}

// advanceStable lifts the stable-commit watermark to ts.
func (m *Manager) advanceStable(ts uint64) {
	for {
		cur := m.stableTS.Load()
		if ts <= cur || m.stableTS.CompareAndSwap(cur, ts) {
			return
		}
	}
}

// VisibilityHorizon returns the version-time bound below which no live
// snapshot and no active user transaction can ever need a version: the
// minimum over live snapshots' pins (see Snapshot.pin — a snapshot can
// chase versions older than its read timestamp when in-flight writers'
// versions mask them, so its pin folds in the in-flight set's begin
// clocks) and active user transactions' begin clocks (a transaction
// begun at clock c writes versions with starts strictly above c, and a
// snapshot it might open pins at or below c). With nothing live the
// horizon is the clock's current value. Version garbage collection may
// reclaim any version chain whose entire time range lies at or below the
// horizon; the horizon is monotone because both snapshot capture and
// transaction begin happen under the same mutex this reads under.
func (m *Manager) VisibilityHorizon() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := uint64(math.MaxUint64)
	for _, s := range m.snaps {
		if s.pin < h {
			h = s.pin
		}
	}
	for _, t := range m.active {
		if !t.System && t.beginClock < h {
			h = t.beginClock
		}
	}
	if h == math.MaxUint64 {
		return m.clockNowLocked()
	}
	return h
}

// SeedRecovered installs restart-analysis results: the largest
// transaction ID seen anywhere in the log and the version-clock high
// water (the larger of the last checkpoint's clock and the largest commit
// timestamp in the stable log). Both keep post-restart allocation
// monotone: reissued transaction IDs would collide with the IDs stamped
// on surviving versions, and reissued timestamps would interleave new
// versions below existing ones. Idempotent; engine restart calls it after
// analysis, before trees re-open.
func (m *Manager) SeedRecovered(maxID wal.TxnID, clockHW uint64) {
	m.mu.Lock()
	if maxID >= m.nextID {
		m.nextID = maxID + 1
	}
	if clockHW > m.recoveredHW {
		m.recoveredHW = clockHW
	}
	m.mu.Unlock()
}

// RecoveredClockHW returns the version-clock high water installed by
// SeedRecovered; trees re-opening after restart seed their clocks from
// it.
func (m *Manager) RecoveredClockHW() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recoveredHW
}

// RecoveryBounds returns the values a fuzzy checkpoint persists so that
// analysis need not scan the whole log to rebuild them: the largest
// transaction ID issued and the version clock's current value (which is
// at or above every commit timestamp ever stamped).
func (m *Manager) RecoveryBounds() (maxID wal.TxnID, clockHW uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nextID - 1, maxUint64(m.recoveredHW, m.clockNowLocked())
}

func maxUint64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
