// Package txn provides database transactions and the paper's atomic
// actions (§4, §4.3).
//
// An atomic action is a short, independent unit of structure change with
// the all-or-nothing property. The paper lists three ways to identify one
// to the recovery manager (§4.3.2): a separate database transaction, a
// special system transaction, or a nested top-level action. This package
// implements two of them:
//
//   - BeginAtomicAction starts a system transaction (FlagSystem in the
//     log). Its commit does not force the log — atomic actions are only
//     "relatively" durable (§4.3.1): the first dependent user commit
//     forces the log and makes them durable too.
//   - (*Txn).BeginNested starts a nested top-level action inside a user
//     transaction; CommitNested writes a dummy CLR that backs the undo
//     chain over the NTA's records so a later abort of the enclosing
//     transaction does not undo them.
//
// Rollback walks the transaction's undo chain, writing compensation log
// records (CLRs) that are themselves redo-only, so restart never undoes
// an undo.
package txn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/lock"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Crash-trigger failpoints owned by the transaction layer. Both are
// probed just before the commit record is appended, so a crash there
// leaves the transaction's updates in the log with no commit record —
// the classic "crashed mid-commit" state (mid-SMO, for an atomic
// action wrapping a structure modification). Fault kinds are ignored
// at these points; only the crash latch matters.
const (
	// FPAACommit fires at the start of an atomic action's commit.
	FPAACommit = "txn.aacommit"
	// FPUserCommit fires at the start of a user transaction's commit,
	// before the commit record is appended and forced.
	FPUserCommit = "txn.usercommit"
	// FPELR fires after an early-lock-release commit has published its
	// locks (dependents can already see its state) but before its commit
	// record is stable — the window where a crash must not produce an
	// acked-but-lost commit or a dependent ack over lost state.
	FPELR = "txn.elr"
)

// State is a transaction's lifecycle state.
type State int

const (
	// Active transactions may log updates.
	Active State = iota
	// Committed transactions have a commit record in the log.
	Committed
	// Aborted transactions have been fully rolled back.
	Aborted
)

// ErrNotActive reports an operation on a finished transaction.
var ErrNotActive = errors.New("txn: transaction not active")

// Options configure a Manager.
type Options struct {
	// ForceOnAACommit disables relative durability: every atomic-action
	// commit forces the log. Experiment T12 measures what that costs.
	ForceOnAACommit bool
	// EarlyLockRelease makes user commits release their two-phase locks
	// as soon as the commit record is appended to the log buffer,
	// tagging each released lock with the commit LSN, then park until
	// the stable prefix covers that LSN. A transaction that later
	// acquires such a lock inherits the tag as a commit dependency and
	// its own ack is held until max(ownLSN, depLSN) is stable, so no ack
	// ever precedes the durability of state it observed.
	EarlyLockRelease bool
}

// Manager creates transactions and atomic actions over one log.
type Manager struct {
	Log    *wal.Log
	Locks  *lock.Manager
	Reg    *storage.Registry
	opts   Options
	inj    *fault.Injector // set once before concurrent use; may be nil
	mu     sync.Mutex
	nextID wal.TxnID
	active map[wal.TxnID]*Txn

	// Version-clock hooks and snapshot state (snapshot.go). clockNow and
	// clockTick are set by SetVersionClock before concurrent use; snaps is
	// the live-snapshot registry; recoveredHW is the clock high water
	// installed by restart analysis.
	clockNow    func() uint64
	clockTick   func() uint64
	snapSeq     uint64
	snaps       map[uint64]*Snapshot
	recoveredHW uint64
	oldestTS    atomic.Uint64 // oldest live snapshot ts; 0 = none
	stableTS    atomic.Uint64 // newest forced user-commit ts
}

// SetInjector attaches a fault injector whose txn.aacommit and
// txn.usercommit crash points are probed on the commit paths. Must be
// called before the manager is used concurrently.
func (m *Manager) SetInjector(inj *fault.Injector) { m.inj = inj }

// NewManager returns a manager writing to log, locking through lm and
// undoing through reg.
func NewManager(log *wal.Log, lm *lock.Manager, reg *storage.Registry, opts Options) *Manager {
	return &Manager{
		Log:    log,
		Locks:  lm,
		Reg:    reg,
		opts:   opts,
		nextID: 1,
		active: make(map[wal.TxnID]*Txn),
	}
}

// Txn is a database transaction or an atomic action.
type Txn struct {
	ID     wal.TxnID
	System bool // true for atomic actions

	mgr      *Manager
	mu       sync.Mutex
	lastLSN  wal.LSN
	firstLSN wal.LSN // begin record; floor for the WAL recycle horizon
	state    State
	// beginClock is the version clock observed when the transaction began
	// (under m.mu, so it orders against snapshot capture); every version
	// the transaction writes has a strictly larger start time. Adopted
	// losers keep 0, conservatively pinning the GC horizon during
	// restart undo.
	beginClock uint64
	// committing is set while the commit record is being appended outside
	// t.mu; SnapshotATT waits it out so a checkpoint's ATT entry never
	// misses a commit record that landed below the checkpoint's StartLSN.
	committing bool
	onCommit   []func()
	// depLSN is the highest commit LSN of any early-released lock this
	// transaction acquired: its commit dependency. Commit holds the ack
	// until the stable prefix covers it. Only the owning goroutine
	// touches it (lock acquisition and commit), so it needs no lock.
	depLSN uint64
}

// OnCommit registers fn to run after the transaction commits, its locks
// are released, and its end record is written. Aborted transactions never
// run their hooks. The Π-tree uses this to defer index-term posting for
// in-transaction data-node splits until the split is durable (§4.2.2:
// "the posting of the index term for splits cannot occur until and unless
// T commits").
func (t *Txn) OnCommit(fn func()) {
	t.mu.Lock()
	t.onCommit = append(t.onCommit, fn)
	t.mu.Unlock()
}

func (m *Manager) begin(system bool) *Txn {
	m.mu.Lock()
	id := m.nextID
	m.nextID++
	t := &Txn{ID: id, System: system, mgr: m, beginClock: m.clockNowLocked()}
	m.active[id] = t
	m.mu.Unlock()

	flags := wal.Flags(0)
	if system {
		flags |= wal.FlagSystem
	}
	lsn := m.Log.Append(&wal.Record{Type: wal.RecBegin, Flags: flags, TxnID: id})
	t.mu.Lock()
	t.lastLSN = lsn
	t.firstLSN = lsn
	t.mu.Unlock()
	return t
}

// Begin starts a user database transaction.
func (m *Manager) Begin() *Txn { return m.begin(false) }

// BeginAtomicAction starts an atomic action as a system transaction. It
// is independent of any database transaction, holds only short-duration
// latches (and, for consolidation, short two-phase locks), and its commit
// relies on relative durability.
func (m *Manager) BeginAtomicAction() *Txn { return m.begin(true) }

// Lookup returns the active transaction with the given ID.
func (m *Manager) Lookup(id wal.TxnID) (*Txn, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.active[id]
	return t, ok
}

// ActiveCount returns the number of unfinished transactions.
func (m *Manager) ActiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}

// ATTEntry is a snapshot row of the active-transaction table, taken for
// fuzzy checkpoints. Committed marks a transaction whose commit record is
// already in the log but whose end record is not; analysis must treat it
// as a winner even when the commit record predates the checkpoint's scan
// window.
type ATTEntry struct {
	ID        wal.TxnID
	LastLSN   wal.LSN
	FirstLSN  wal.LSN // begin record: no record of this txn precedes it
	System    bool
	Committed bool
}

// SnapshotATT returns the live transaction table for a fuzzy checkpoint.
// It waits out any in-flight commit-record append so each entry's
// (LastLSN, Committed) pair is consistent with the log contents.
func (m *Manager) SnapshotATT() []ATTEntry {
	m.mu.Lock()
	txns := make([]*Txn, 0, len(m.active))
	for _, t := range m.active {
		txns = append(txns, t)
	}
	m.mu.Unlock()
	out := make([]ATTEntry, 0, len(txns))
	for _, t := range txns {
		t.mu.Lock()
		for t.committing {
			t.mu.Unlock()
			runtime.Gosched()
			t.mu.Lock()
		}
		out = append(out, ATTEntry{ID: t.ID, LastLSN: t.lastLSN, FirstLSN: t.firstLSN, System: t.System, Committed: t.state == Committed})
		t.mu.Unlock()
	}
	return out
}

// FinishRecovered writes the end record for a transaction that restart
// found committed but unended.
func (t *Txn) FinishRecovered() {
	t.mu.Lock()
	t.state = Committed
	t.mu.Unlock()
	t.finish(wal.RecEnd)
}

// Adopt registers a reconstructed loser transaction during restart so
// that undo can drive it through the normal rollback path.
func (m *Manager) Adopt(id wal.TxnID, system bool, lastLSN wal.LSN) *Txn {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id >= m.nextID {
		m.nextID = id + 1
	}
	// Adopted losers keep firstLSN 0: restart never recycles segments, so
	// the conservative floor is harmless.
	t := &Txn{ID: id, System: system, mgr: m, lastLSN: lastLSN}
	m.active[id] = t
	return t
}

// LastLSN returns the most recent log record of this transaction.
func (t *Txn) LastLSN() wal.LSN {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lastLSN
}

// State returns the transaction's lifecycle state.
func (t *Txn) State() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// flags returns the record flags for this transaction.
func (t *Txn) flags() wal.Flags {
	if t.System {
		return wal.FlagSystem
	}
	return 0
}

// LogUpdate appends a physiological update record in this transaction's
// undo chain and returns its LSN. It implements storage.UpdateLogger. The
// caller must apply the matching page change under the page's X latch and
// MarkDirty with the returned LSN.
func (t *Txn) LogUpdate(storeID uint32, pageID uint64, kind wal.Kind, payload []byte) wal.LSN {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != Active {
		panic(fmt.Sprintf("txn %d: LogUpdate in state %d", t.ID, t.state))
	}
	lsn := t.mgr.Log.Append(&wal.Record{
		Type:    wal.RecUpdate,
		Flags:   t.flags(),
		Kind:    kind,
		TxnID:   t.ID,
		PrevLSN: t.lastLSN,
		StoreID: storeID,
		PageID:  pageID,
		Payload: payload,
	})
	t.lastLSN = lsn
	return lsn
}

// GroupUpdate is one update in a LogUpdateGroup batch.
type GroupUpdate struct {
	Kind    wal.Kind
	Payload []byte
}

// LogUpdateGroup appends one physiological update record per entry of ups
// — all against the same page — as a single reserved-slot group append:
// one t.mu hold, one log reservation, one publication handshake. The
// records chain through this transaction's undo chain exactly as if
// logged one at a time (AppendGroup rewrites the intra-group PrevLSNs),
// so undo and redo stay per-record. Returns the first and last record
// LSNs; the caller must MarkDirty the page with BOTH, first then last —
// a clean page's recLSN must cover the group's first record (marking
// only the last would let a fuzzy checkpoint publish a recLSN above
// unflushed records, and redo would drop them), while pageLSN advances
// to the group's last. No-op returning the current lastLSN twice for an
// empty batch.
func (t *Txn) LogUpdateGroup(storeID uint32, pageID uint64, ups []GroupUpdate) (first, last wal.LSN) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != Active {
		panic(fmt.Sprintf("txn %d: LogUpdateGroup in state %d", t.ID, t.state))
	}
	if len(ups) == 0 {
		return t.lastLSN, t.lastLSN
	}
	recs := make([]*wal.Record, len(ups))
	for i := range ups {
		recs[i] = &wal.Record{
			Type:    wal.RecUpdate,
			Flags:   t.flags(),
			Kind:    ups[i].Kind,
			TxnID:   t.ID,
			StoreID: storeID,
			PageID:  pageID,
			Payload: ups[i].Payload,
		}
	}
	recs[0].PrevLSN = t.lastLSN
	lsn := t.mgr.Log.AppendGroup(recs)
	t.lastLSN = lsn
	return recs[0].LSN, lsn
}

// LogCLR appends a compensation record in this transaction's chain with
// the given undo-next pointer, and returns its LSN. Logical undo handlers
// use it: they apply the compensating change to whatever page the data
// lives on now (under that page's X latch) and log it here; undoNext must
// be the PrevLSN of the record being compensated so restart never repeats
// the undo.
func (t *Txn) LogCLR(storeID uint32, pageID uint64, kind wal.Kind, payload []byte, undoNext wal.LSN) wal.LSN {
	t.mu.Lock()
	defer t.mu.Unlock()
	lsn := t.mgr.Log.Append(&wal.Record{
		Type:     wal.RecCLR,
		Flags:    t.flags(),
		Kind:     kind,
		TxnID:    t.ID,
		PrevLSN:  t.lastLSN,
		UndoNext: undoNext,
		StoreID:  storeID,
		PageID:   pageID,
		Payload:  payload,
	})
	t.lastLSN = lsn
	return lsn
}

// Lock acquires a database lock for this transaction; see lock.Manager.
// Callers must obey the No-Wait rule: release any latch that can conflict
// with a database-lock holder before calling. A lock released early by a
// committing writer carries that writer's commit LSN; acquiring it makes
// this transaction commit-dependent on it.
func (t *Txn) Lock(name lock.Name, mode lock.Mode) error {
	dep, err := t.mgr.Locks.LockDep(t.ID, name, mode)
	if dep > t.depLSN {
		t.depLSN = dep
	}
	return err
}

// TryLock acquires a database lock only if no waiting is needed.
func (t *Txn) TryLock(name lock.Name, mode lock.Mode) bool {
	dep, ok := t.mgr.Locks.TryLockDep(t.ID, name, mode)
	if ok && dep > t.depLSN {
		t.depLSN = dep
	}
	return ok
}

// TryLockBatch acquires every name in names (in order, under one
// lock-manager interaction per stripe) only where no waiting is needed.
// Returns the index of the first name that would have to wait, or -1 when
// all were granted. Granted locks are kept either way (two-phase); on
// failure the caller typically releases its latches, blocks on the failed
// name with Lock, and retries the operation.
func (t *Txn) TryLockBatch(names []lock.Name, mode lock.Mode) int {
	dep, fail := t.mgr.Locks.TryLockDepBatch(t.ID, names, mode)
	if dep > t.depLSN {
		t.depLSN = dep
	}
	return fail
}

// Commit makes the transaction's effects permanent. User commits force
// the log through the group-commit path (durability promise to the
// user); atomic-action commits do not force at all — relative durability
// (§4.3.1) — unless the manager was configured with ForceOnAACommit.
func (t *Txn) Commit() error {
	t.mu.Lock()
	if t.state != Active {
		t.mu.Unlock()
		return ErrNotActive
	}
	// Read-only fast path: a transaction that logged nothing has nothing
	// to make durable and nothing for restart to see — committing it is
	// just releasing its locks. Skipping the commit record and the group
	// force matters beyond the transaction itself: read-only 2PL
	// transactions would otherwise ride (and subsidize) the writers'
	// group-commit rounds. The one exception is a commit dependency: a
	// reader that observed early-released state must not be acknowledged
	// until the writer's commit record is stable, even though it has no
	// record of its own to force.
	if t.lastLSN == wal.NilLSN {
		t.state = Committed
		hooks := t.onCommit
		t.onCommit = nil
		dep := t.depLSN
		t.mu.Unlock()
		t.mgr.Locks.ReleaseAll(t.ID)
		if dep != 0 {
			if err := t.mgr.Log.ForceGroup(wal.LSN(dep)); err != nil {
				// The observed writer's commit can never become stable;
				// this reader's result must not be acknowledged either.
				t.mu.Lock()
				t.state = Aborted
				t.mu.Unlock()
				t.mgr.mu.Lock()
				delete(t.mgr.active, t.ID)
				t.mgr.mu.Unlock()
				return fmt.Errorf("txn %d: commit depends on unstable LSN %d: %w", t.ID, dep, err)
			}
			t.mgr.Locks.NoteStable(uint64(t.mgr.Log.StableLSN()))
		}
		t.mgr.mu.Lock()
		delete(t.mgr.active, t.ID)
		t.mgr.mu.Unlock()
		for _, fn := range hooks {
			fn()
		}
		return nil
	}
	// Crash-trigger probes: a crash here leaves every update logged but
	// no commit record, the state recovery must roll back.
	if t.System {
		_ = t.mgr.inj.Check(FPAACommit)
	} else {
		_ = t.mgr.inj.Check(FPUserCommit)
	}
	// Append the commit record outside t.mu: the append may stall behind
	// concurrent appenders, and t.mu must stay cheap to take. committing
	// makes the window visible to SnapshotATT, which needs (lastLSN,
	// Committed) consistent with the log when it builds a checkpoint.
	t.committing = true
	prev := t.lastLSN
	t.mu.Unlock()

	// Stamp the commit record with a fresh version-clock tick: the commit
	// timestamp. It is strictly above every version start this transaction
	// wrote (version starts are also ticks, taken earlier), so restart
	// analysis can reconstruct the clock high water from commit records
	// alone — every surviving version belongs to a stamped committer, and
	// losers' versions are removed by undo. Atomic actions are stamped too:
	// their commits cover the time-split boundaries they cut.
	var cts uint64
	var payload []byte
	if tick := t.mgr.clockTick; tick != nil {
		cts = tick()
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, cts)
		payload = b
	}
	lsn := t.mgr.Log.Append(&wal.Record{Type: wal.RecCommit, Flags: t.flags(), TxnID: t.ID, PrevLSN: prev, Payload: payload})
	t.mu.Lock()
	t.lastLSN = lsn
	t.state = Committed
	t.committing = false
	t.mu.Unlock()

	if !t.System || t.mgr.opts.ForceOnAACommit {
		// Early lock release: the commit record is in the log buffer, so
		// the locks can go now — tagged with this commit LSN so any
		// transaction that acquires one inherits it as a commit
		// dependency. The ack below still waits for stability; only the
		// lock hold time shrinks. Atomic actions keep their locks: their
		// relative durability already rides a dependent user commit.
		elr := !t.System && t.mgr.opts.EarlyLockRelease
		if elr {
			t.mgr.Locks.ReleaseAllAt(t.ID, uint64(lsn))
			// Crash here = locks released, dependents possibly reading,
			// commit record not yet stable.
			_ = t.mgr.inj.Check(FPELR)
		}
		// A commit dependency beyond our own LSN can only arise for
		// records appended before ours (stability is a prefix), but force
		// the max defensively.
		target := lsn
		if dep := wal.LSN(t.depLSN); dep > target {
			target = dep
		}
		if err := t.mgr.Log.ForceGroup(target); err != nil {
			// The force failed, and force failures are sticky: the commit
			// record can never reach the stable prefix, so restart is
			// certain to treat this transaction as a loser. Rolling back
			// in memory now keeps the running system consistent with that
			// outcome, and the caller learns durability was NOT achieved.
			t.mu.Lock()
			t.state = Active
			t.mu.Unlock()
			if aerr := t.Abort(); aerr != nil {
				return fmt.Errorf("txn %d: commit force failed (%v), rollback also failed: %w", t.ID, err, aerr)
			}
			return fmt.Errorf("txn %d: commit not durable, rolled back: %w", t.ID, err)
		}
		t.mgr.Locks.NoteStable(uint64(t.mgr.Log.StableLSN()))
		t.mgr.advanceStable(cts)
	}
	t.finish(wal.RecEnd)
	t.mu.Lock()
	hooks := t.onCommit
	t.onCommit = nil
	t.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	return nil
}

// Abort rolls the transaction back completely and releases its locks.
func (t *Txn) Abort() error {
	t.mu.Lock()
	if t.state != Active {
		t.mu.Unlock()
		return ErrNotActive
	}
	lsn := t.mgr.Log.Append(&wal.Record{Type: wal.RecAbort, Flags: t.flags(), TxnID: t.ID, PrevLSN: t.lastLSN})
	t.lastLSN = lsn
	from := t.lastLSN
	t.mu.Unlock()

	if err := t.rollbackTo(from, wal.NilLSN); err != nil {
		return err
	}
	t.mu.Lock()
	t.state = Aborted
	t.mu.Unlock()
	t.finish(wal.RecEnd)
	return nil
}

// finish writes the end record and releases the transaction's resources.
func (t *Txn) finish(end wal.RecType) {
	t.mu.Lock()
	lsn := t.mgr.Log.Append(&wal.Record{Type: end, Flags: t.flags(), TxnID: t.ID, PrevLSN: t.lastLSN})
	t.lastLSN = lsn
	t.mu.Unlock()
	t.mgr.Locks.ReleaseAll(t.ID)
	t.mgr.mu.Lock()
	delete(t.mgr.active, t.ID)
	t.mgr.mu.Unlock()
}

// NestedToken marks the start of a nested top-level action.
type NestedToken struct {
	savedLSN wal.LSN
}

// BeginNested starts a nested top-level action: subsequent updates will
// survive an abort of the enclosing transaction once CommitNested runs.
func (t *Txn) BeginNested() NestedToken {
	t.mu.Lock()
	defer t.mu.Unlock()
	return NestedToken{savedLSN: t.lastLSN}
}

// CommitNested ends a nested top-level action by writing a dummy CLR whose
// UndoNext bypasses the NTA's records in the undo chain.
func (t *Txn) CommitNested(tok NestedToken) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != Active {
		panic("txn: CommitNested on finished transaction")
	}
	lsn := t.mgr.Log.Append(&wal.Record{
		Type:     wal.RecDummyCLR,
		Flags:    t.flags(),
		TxnID:    t.ID,
		PrevLSN:  t.lastLSN,
		UndoNext: tok.savedLSN,
	})
	t.lastLSN = lsn
}

// AbortNested rolls back only the records logged since BeginNested,
// leaving the enclosing transaction active.
func (t *Txn) AbortNested(tok NestedToken) error {
	t.mu.Lock()
	from := t.lastLSN
	t.mu.Unlock()
	return t.rollbackTo(from, tok.savedLSN)
}

// rollbackTo undoes this transaction's updates from LSN `from` backwards
// until the chain reaches `until` (NilLSN = the begin record). It is also
// the restart-undo engine: recovery adopts losers and calls it.
func (t *Txn) rollbackTo(from, until wal.LSN) error {
	next := from
	for next != wal.NilLSN && next != until {
		rec, err := t.mgr.Log.Read(next)
		if err != nil {
			return fmt.Errorf("txn %d rollback read: %w", t.ID, err)
		}
		switch rec.Type {
		case wal.RecUpdate:
			if err := t.undoOne(&rec); err != nil {
				return err
			}
			next = rec.PrevLSN
		case wal.RecCLR, wal.RecDummyCLR:
			next = rec.UndoNext
		default:
			next = rec.PrevLSN
		}
	}
	return nil
}

// undoOne compensates a single update record.
func (t *Txn) undoOne(rec *wal.Record) error {
	h, err := t.mgr.Reg.Handler(rec.Kind)
	if err != nil {
		return err
	}
	if h.LogicalUndo != nil {
		return h.LogicalUndo(rec)
	}
	if h.MakeUndo == nil {
		// Redo-only record: back the chain over it with a CLR so restart
		// does not revisit it.
		t.mu.Lock()
		t.lastLSN = t.mgr.Log.Append(&wal.Record{
			Type:     wal.RecCLR,
			Flags:    t.flags(),
			Kind:     0,
			TxnID:    t.ID,
			PrevLSN:  t.lastLSN,
			UndoNext: rec.PrevLSN,
		})
		t.mu.Unlock()
		return nil
	}
	comp, err := h.MakeUndo(rec)
	if err != nil {
		return err
	}
	pool, err := t.mgr.Reg.Pool(comp.StoreID)
	if err != nil {
		return err
	}
	f, err := pool.FetchOrCreate(comp.PageID)
	if err != nil {
		return err
	}
	defer pool.Unpin(f)
	// Latch the page before appending the CLR and hold the latch across
	// the apply — the same protocol as forward updates. Appending first
	// and latching inside ApplyRedo would let two transactions undoing on
	// the same page append in one order and apply in the other, and the
	// pageLSN guard would then drop the lower-LSN compensation from the
	// buffered page. Restart's concurrent loser-undo workers hit exactly
	// that interleaving.
	f.Latch.AcquireX()
	defer f.Latch.ReleaseX()
	t.mu.Lock()
	clr := &wal.Record{
		Type:     wal.RecCLR,
		Flags:    t.flags(),
		Kind:     comp.Kind,
		TxnID:    t.ID,
		PrevLSN:  t.lastLSN,
		UndoNext: rec.PrevLSN,
		StoreID:  comp.StoreID,
		PageID:   uint64(comp.PageID),
		Payload:  comp.Payload,
	}
	t.mgr.Log.Append(clr)
	t.lastLSN = clr.LSN
	t.mu.Unlock()
	return t.mgr.Reg.ApplyRedoFrame(f, clr)
}

// RollbackLoser drives restart undo for an adopted loser: it rolls back
// everything and writes the end record.
func (t *Txn) RollbackLoser() error {
	t.mu.Lock()
	from := t.lastLSN
	t.mu.Unlock()
	if err := t.rollbackTo(from, wal.NilLSN); err != nil {
		return err
	}
	t.mu.Lock()
	t.state = Aborted
	t.mu.Unlock()
	t.finish(wal.RecEnd)
	return nil
}
