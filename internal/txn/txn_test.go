package txn

import (
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/lock"
	"repro/internal/storage"
	"repro/internal/wal"
)

// counterKind is a test record kind: the page holds a *counter and the
// payload is a delta; undo applies the negated delta to the same page.
const counterKind wal.Kind = 200

type counter struct{ v int64 }

type counterCodec struct{}

func (counterCodec) EncodePage(v any) ([]byte, error) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v.(*counter).v))
	return b[:], nil
}

func (counterCodec) DecodePage(b []byte) (any, error) {
	return &counter{v: int64(binary.LittleEndian.Uint64(b))}, nil
}

func delta(d int64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(d))
	return b[:]
}

func registerCounter(reg *storage.Registry) {
	reg.Register(counterKind, storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			if f.Data == nil {
				f.Data = &counter{}
			}
			f.Data.(*counter).v += int64(binary.LittleEndian.Uint64(rec.Payload))
			return nil
		},
		MakeUndo: func(rec *wal.Record) (storage.Compensation, error) {
			d := int64(binary.LittleEndian.Uint64(rec.Payload))
			return storage.Compensation{Kind: counterKind, StoreID: rec.StoreID, PageID: storage.PageID(rec.PageID), Payload: delta(-d)}, nil
		},
	})
}

type env struct {
	log  *wal.Log
	reg  *storage.Registry
	lm   *lock.Manager
	tm   *Manager
	pool *storage.Pool
}

func newEnv(t testing.TB, opts Options) *env {
	t.Helper()
	log := wal.New()
	reg := storage.NewRegistry()
	registerCounter(reg)
	lm := lock.NewManager()
	tm := NewManager(log, lm, reg, opts)
	pool := storage.NewPool(1, storage.NewDisk(), log, counterCodec{}, 0)
	reg.AddPool(pool)
	return &env{log: log, reg: reg, lm: lm, tm: tm, pool: pool}
}

// add applies a counter delta to page pid inside t, like a page operation
// would: log, mutate under latch, mark dirty.
func (e *env) add(t *Txn, pid storage.PageID, d int64) {
	f, err := e.pool.FetchOrCreate(pid)
	if err != nil {
		panic(err)
	}
	f.Latch.AcquireX()
	if f.Data == nil {
		f.Data = &counter{}
	}
	lsn := t.LogUpdate(1, uint64(pid), counterKind, delta(d))
	f.Data.(*counter).v += d
	f.MarkDirty(lsn)
	f.Latch.ReleaseX()
	e.pool.Unpin(f)
}

func (e *env) value(t testing.TB, pid storage.PageID) int64 {
	f, err := e.pool.FetchOrCreate(pid)
	if err != nil {
		t.Fatal(err)
	}
	defer e.pool.Unpin(f)
	if f.Data == nil {
		return 0
	}
	return f.Data.(*counter).v
}

func TestCommitForcesLog(t *testing.T) {
	e := newEnv(t, Options{})
	tx := e.tm.Begin()
	e.add(tx, 5, 10)
	before := e.log.StableLSN()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if e.log.StableLSN() <= before {
		t.Fatal("user commit did not force the log")
	}
	if e.tm.ActiveCount() != 0 {
		t.Fatal("transaction still active after commit")
	}
}

func TestAACommitRelativeDurability(t *testing.T) {
	e := newEnv(t, Options{})
	aa := e.tm.BeginAtomicAction()
	e.add(aa, 5, 10)
	_, before := e.log.Stats()
	if err := aa.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, after := e.log.Stats(); after != before {
		t.Fatal("atomic action commit forced the log despite relative durability")
	}
	// The next user commit carries it to stability. (The commit's own
	// end record trails the force, so compare against the pre-commit
	// end of log, which covers every atomic-action record.)
	tx := e.tm.Begin()
	e.add(tx, 6, 1)
	preCommit := e.log.EndLSN()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if e.log.StableLSN() < preCommit {
		t.Fatal("user commit did not flush the atomic action's records")
	}
}

func TestAACommitForcedWhenConfigured(t *testing.T) {
	e := newEnv(t, Options{ForceOnAACommit: true})
	aa := e.tm.BeginAtomicAction()
	e.add(aa, 5, 10)
	_, before := e.log.Stats()
	if err := aa.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, after := e.log.Stats(); after != before+1 {
		t.Fatal("ForceOnAACommit did not force")
	}
}

func TestAbortRestoresPages(t *testing.T) {
	e := newEnv(t, Options{})
	tx := e.tm.Begin()
	e.add(tx, 5, 10)
	e.add(tx, 5, 7)
	e.add(tx, 6, 3)
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if v := e.value(t, 5); v != 0 {
		t.Fatalf("page 5 = %d after abort", v)
	}
	if v := e.value(t, 6); v != 0 {
		t.Fatalf("page 6 = %d after abort", v)
	}
	if e.tm.ActiveCount() != 0 {
		t.Fatal("active after abort")
	}
}

func TestAbortWritesCLRChain(t *testing.T) {
	e := newEnv(t, Options{})
	tx := e.tm.Begin()
	e.add(tx, 5, 10)
	e.add(tx, 5, 20)
	_ = tx.Abort()
	var clrs int
	var lastUndoNext wal.LSN
	e.log.FullImage().Scan(wal.NilLSN, func(r wal.Record) bool {
		if r.Type == wal.RecCLR {
			clrs++
			lastUndoNext = r.UndoNext
		}
		return true
	})
	if clrs != 2 {
		t.Fatalf("CLRs = %d, want 2", clrs)
	}
	// The final CLR's UndoNext must point at the begin record's LSN (1),
	// i.e. before the first update.
	if lastUndoNext != 1 {
		t.Fatalf("final UndoNext = %d, want 1", lastUndoNext)
	}
}

func TestNestedTopLevelActionSurvivesAbort(t *testing.T) {
	e := newEnv(t, Options{})
	tx := e.tm.Begin()
	e.add(tx, 5, 1) // undoable
	nt := tx.BeginNested()
	e.add(tx, 6, 100) // NTA: survives abort
	tx.CommitNested(nt)
	e.add(tx, 5, 2) // undoable
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if v := e.value(t, 5); v != 0 {
		t.Fatalf("page 5 = %d, want 0", v)
	}
	if v := e.value(t, 6); v != 100 {
		t.Fatalf("page 6 = %d, want 100 (NTA must survive)", v)
	}
}

func TestAbortNestedRollsBackOnlyNested(t *testing.T) {
	e := newEnv(t, Options{})
	tx := e.tm.Begin()
	e.add(tx, 5, 1)
	nt := tx.BeginNested()
	e.add(tx, 5, 50)
	e.add(tx, 6, 7)
	if err := tx.AbortNested(nt); err != nil {
		t.Fatal(err)
	}
	if v := e.value(t, 5); v != 1 {
		t.Fatalf("page 5 = %d, want 1", v)
	}
	if v := e.value(t, 6); v != 0 {
		t.Fatalf("page 6 = %d, want 0", v)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if v := e.value(t, 5); v != 1 {
		t.Fatalf("page 5 = %d after commit", v)
	}
}

func TestOnCommitHooks(t *testing.T) {
	e := newEnv(t, Options{})
	tx := e.tm.Begin()
	ran := false
	tx.OnCommit(func() { ran = true })
	if ran {
		t.Fatal("hook ran early")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("hook did not run on commit")
	}
	tx2 := e.tm.Begin()
	ran2 := false
	tx2.OnCommit(func() { ran2 = true })
	_ = tx2.Abort()
	if ran2 {
		t.Fatal("hook ran on abort")
	}
}

func TestLocksReleasedAtEnd(t *testing.T) {
	e := newEnv(t, Options{})
	tx := e.tm.Begin()
	if err := tx.Lock(lock.KeyName(1, []byte("k")), lock.X); err != nil {
		t.Fatal(err)
	}
	if e.lm.HeldCount(tx.ID) != 1 {
		t.Fatal("lock not recorded")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if e.lm.HeldCount(tx.ID) != 0 {
		t.Fatal("locks survived commit")
	}
}

func TestDoubleFinishRejected(t *testing.T) {
	e := newEnv(t, Options{})
	tx := e.tm.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != ErrNotActive {
		t.Fatalf("second commit: %v", err)
	}
	if err := tx.Abort(); err != ErrNotActive {
		t.Fatalf("abort after commit: %v", err)
	}
}

func TestSnapshotATT(t *testing.T) {
	e := newEnv(t, Options{})
	t1 := e.tm.Begin()
	aa := e.tm.BeginAtomicAction()
	e.add(t1, 5, 1)
	att := e.tm.SnapshotATT()
	if len(att) != 2 {
		t.Fatalf("ATT rows = %d", len(att))
	}
	bySys := map[bool]int{}
	for _, row := range att {
		bySys[row.System]++
		if row.LastLSN == wal.NilLSN {
			t.Fatal("ATT row without lastLSN")
		}
	}
	if bySys[true] != 1 || bySys[false] != 1 {
		t.Fatalf("ATT composition: %v", bySys)
	}
	_ = t1.Commit()
	_ = aa.Commit()
}

func TestManyTxnIDsUnique(t *testing.T) {
	e := newEnv(t, Options{})
	seen := make(map[wal.TxnID]bool)
	for i := 0; i < 100; i++ {
		tx := e.tm.Begin()
		if seen[tx.ID] {
			t.Fatalf("duplicate txn id %d", tx.ID)
		}
		seen[tx.ID] = true
		_ = tx.Commit()
	}
}

func ExampleTxn_Commit() {
	log := wal.New()
	reg := storage.NewRegistry()
	tm := NewManager(log, lock.NewManager(), reg, Options{})
	tx := tm.Begin()
	fmt.Println(tx.State() == Active)
	_ = tx.Commit()
	fmt.Println(tx.State() == Committed)
	// Output:
	// true
	// true
}
