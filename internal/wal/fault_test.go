package wal

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/fault"
)

// newFaultyLog returns a log wired to a fresh seeded injector.
func newFaultyLog(seed int64) (*Log, *fault.Injector) {
	l := New()
	inj := fault.New(seed)
	l.SetInjector(inj)
	return l, inj
}

func appendN(l *Log, n int) []LSN {
	lsns := make([]LSN, n)
	for i := 0; i < n; i++ {
		lsns[i] = l.Append(&Record{Type: RecUpdate, TxnID: TxnID(i + 1), StoreID: 1, PageID: uint64(i + 2)})
	}
	return lsns
}

func TestForceTransientRetries(t *testing.T) {
	l, inj := newFaultyLog(1)
	lsns := appendN(l, 3)
	inj.Arm(FPSync, fault.Spec{Kind: fault.Transient, Count: 2})
	if err := l.Force(lsns[2]); err != nil {
		t.Fatalf("transient sync fault not retried: %v", err)
	}
	if l.StableLSN() <= lsns[2] {
		t.Fatal("force returned nil without advancing stability")
	}
	if l.Damaged() {
		t.Fatal("log damaged after recovered transient fault")
	}
	if got := len(inj.Trips()); got != 2 {
		t.Fatalf("fault fired %d times, want 2", got)
	}
}

func TestForceTransientExhaustionDamagesLog(t *testing.T) {
	l, inj := newFaultyLog(2)
	lsns := appendN(l, 2)
	inj.Arm(FPSync, fault.Spec{Kind: fault.Transient, Count: -1})
	err := l.Force(lsns[1])
	if err == nil {
		t.Fatal("force succeeded against an endlessly failing device")
	}
	if !errors.Is(err, ErrLogFailed) || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("error %v missing sentinels", err)
	}
	if !l.Damaged() {
		t.Fatal("log not latched damaged after retry exhaustion")
	}
	// Damage is sticky: later forces fail without touching the device,
	// even after the fault is disarmed.
	inj.Disarm(FPSync)
	if err := l.Force(lsns[1]); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("force after damage: %v", err)
	}
}

func TestForcePermanentDamagesLog(t *testing.T) {
	l, inj := newFaultyLog(3)
	lsns := appendN(l, 2)
	inj.Arm(FPSync, fault.Spec{Kind: fault.Permanent})
	if err := l.Force(lsns[1]); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("permanent fault: %v", err)
	}
	if !l.Damaged() {
		t.Fatal("log not damaged after permanent fault")
	}
}

func TestForceAlreadyStableSucceedsOnDamagedLog(t *testing.T) {
	l, inj := newFaultyLog(4)
	lsns := appendN(l, 3)
	if err := l.Force(lsns[2]); err != nil {
		t.Fatal(err)
	}
	inj.Arm(FPSync, fault.Spec{Kind: fault.Permanent})
	later := l.Append(&Record{Type: RecCommit, TxnID: 9})
	if err := l.Force(later); err == nil {
		t.Fatal("force of new record should have failed")
	}
	// Records that were stable before the device died stay stable:
	// forcing them is a no-op, not an error.
	for _, lsn := range lsns {
		if err := l.Force(lsn); err != nil {
			t.Fatalf("force of already-stable %d on damaged log: %v", lsn, err)
		}
	}
}

func TestForceTornStopsAtRecordBoundary(t *testing.T) {
	l, inj := newFaultyLog(5)
	lsns := appendN(l, 8)
	inj.Arm(FPSync, fault.Spec{Kind: fault.Torn})
	err := l.Force(lsns[7])
	if err == nil {
		t.Fatal("torn sync reported success")
	}
	if !fault.IsTorn(err) || !errors.Is(err, ErrLogFailed) {
		t.Fatalf("error %v is not a torn log failure", err)
	}
	if !l.Damaged() {
		t.Fatal("log not damaged after torn sync")
	}
	// The surviving prefix must end exactly at one of the record
	// boundaries strictly before the target.
	stable := l.StableLSN()
	if stable > lsns[7] {
		t.Fatalf("stable %d beyond torn target %d", stable, lsns[7])
	}
	ok := stable == 0
	for _, b := range lsns {
		if stable == b {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("stable point %d is not a record boundary (%v)", stable, lsns)
	}
	// The crash image is readable up to the tear and no further.
	img := l.CrashImage(nil)
	n := 0
	img.Scan(NilLSN, func(rec Record) bool { n++; return true })
	if LSN(n) > 8 {
		t.Fatalf("crash image has %d records", n)
	}
}

func TestTornReproducibleFromSeed(t *testing.T) {
	run := func(seed int64) LSN {
		l, inj := newFaultyLog(seed)
		lsns := appendN(l, 10)
		inj.Arm(FPSync, fault.Spec{Kind: fault.Torn})
		if err := l.Force(lsns[9]); err == nil {
			t.Fatal("torn sync reported success")
		}
		return l.StableLSN()
	}
	if a, b := run(77), run(77); a != b {
		t.Fatalf("same seed tore at %d then %d", a, b)
	}
}

func TestForceGroupFollowersNotAckedOnFailure(t *testing.T) {
	l, inj := newFaultyLog(6)
	before := l.StableLSN()
	inj.Arm(FPSync, fault.Spec{Kind: fault.Permanent, Count: -1})

	const committers = 8
	var wg sync.WaitGroup
	errs := make([]error, committers)
	for i := 0; i < committers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lsn := l.Append(&Record{Type: RecCommit, TxnID: TxnID(i + 1)})
			errs[i] = l.ForceGroup(lsn)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("committer %d acked with the log device dead", i)
		}
		if !errors.Is(err, ErrLogFailed) {
			t.Fatalf("committer %d: %v", i, err)
		}
	}
	if !l.Damaged() {
		t.Fatal("log not damaged")
	}
	if l.StableLSN() != before {
		t.Fatalf("stable advanced from %d to %d on a dead device", before, l.StableLSN())
	}
}

func TestForceGroupTransientRoundSucceeds(t *testing.T) {
	l, inj := newFaultyLog(7)
	inj.Arm(FPSync, fault.Spec{Kind: fault.Transient, Count: 3})

	const committers = 8
	var wg sync.WaitGroup
	errs := make([]error, committers)
	lsns := make([]LSN, committers)
	for i := 0; i < committers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lsns[i] = l.Append(&Record{Type: RecCommit, TxnID: TxnID(i + 1)})
			errs[i] = l.ForceGroup(lsns[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("committer %d failed across a transient fault: %v", i, err)
		}
		if !l.stableBeyond(lsns[i]) {
			t.Fatalf("committer %d acked but record %d not stable", i, lsns[i])
		}
	}
	if l.Damaged() {
		t.Fatal("log damaged by a recovered transient fault")
	}
}

func TestForceGroupTornAcksSurvivingPrefix(t *testing.T) {
	// Deterministic single-caller torn round: the caller's own record may
	// or may not survive inside the prefix; if it did, ForceGroup must
	// return nil even though the round reported an error.
	l, inj := newFaultyLog(8)
	lsns := appendN(l, 6)
	inj.Arm(FPSync, fault.Spec{Kind: fault.Torn})
	err := l.ForceGroup(lsns[5])
	stable := l.StableLSN()
	if lsns[5] < stable {
		if err != nil {
			t.Fatalf("record inside surviving prefix not acked: %v", err)
		}
	} else if err == nil {
		t.Fatal("record beyond the tear acked")
	}
	// Either way the log is now damaged and future commits are refused.
	if err := l.ForceGroup(l.Append(&Record{Type: RecCommit, TxnID: 99})); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("commit after torn round: %v", err)
	}
}

func TestCrashLatchFreezesStablePoint(t *testing.T) {
	l, inj := newFaultyLog(9)
	lsns := appendN(l, 4)
	if err := l.Force(lsns[3]); err != nil {
		t.Fatal(err)
	}
	before := l.StableLSN()
	inj.TripCrash()
	// New records appended after the crash instant can never be forced.
	late := l.Append(&Record{Type: RecCommit, TxnID: 42})
	if err := l.Force(late); err == nil {
		t.Fatal("force succeeded after crash latch")
	}
	if l.StableLSN() != before {
		t.Fatalf("stable moved from %d to %d after crash", before, l.StableLSN())
	}
}
