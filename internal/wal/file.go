// File-backed WAL: fixed-size segment files named by base LSN, a master
// record carrying the checkpoint anchor and recycle horizon, replay that
// verifies per-record CRC + LSN continuity and truncates at the first
// corrupt or torn tail record, and checkpoint-driven retirement +
// recycling of dead segments.
//
// On-disk formats (all little-endian):
//
//	segment file "wal-<base16>.seg":
//	  [0:8)   magic "PITRWAL1"
//	  [8:12)  format version (1)
//	  [12:16) data capacity in bytes (segment size)
//	  [16:24) base LSN of the first data byte
//	  [24:28) CRC32C over bytes [0:24)
//	  [28:32) zero pad
//	  [32:..) raw record stream: the log bytes [base, base+cap)
//
//	master file "wal-master" (written via tmp+rename, so always atomic):
//	  [0:8)   magic "PITRMSTR"
//	  [8:12)  format version (1)
//	  [12:20) checkpoint anchor LSN
//	  [20:28) recycle horizon LSN
//	  [28:32) CRC32C over bytes [0:28)
//
// The byte stream inside segments is exactly the in-memory log: LSN =
// absolute byte offset, each record framed as len|crc|lsn|... with the
// CRC covering the stored LSN. Replay therefore needs no segment-local
// record index — it walks records from the horizon and stops at the
// first frame whose CRC fails or whose stored LSN disagrees with its
// position. The latter check is what makes recycled segments safe to
// reuse without zeroing: stale bytes from a previous life are intact
// records, but they carry old LSNs and self-invalidate.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ErrShortSegment reports a WAL segment chain that cannot be replayed:
// a gap between segment base LSNs, a segment file shorter than its
// header, or a recycled prefix whose master record is missing.
var ErrShortSegment = errors.New("wal: short or missing segment")

// SyncPolicy selects when the durability layer issues fsync.
type SyncPolicy int

const (
	// SyncAlways fsyncs the active segment on every stable-prefix
	// commit. Group commit already batches many transaction commits into
	// one stable-prefix advance, so this is one fsync per force round,
	// not per transaction.
	SyncAlways SyncPolicy = iota
	// SyncNever issues no fsyncs at all: bytes reach the OS page cache
	// on Persist and survive a process kill, but not an OS crash or
	// power loss. This is the mode the real-crash (SIGKILL) harness
	// runs, and the honest equivalent of the in-memory simulation.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// DefaultSegmentSize is the default data capacity of one WAL segment.
const DefaultSegmentSize = 1 << 20

const (
	segHdrLen    = 32
	masterLen    = 32
	segMagic     = "PITRWAL1"
	masterMagic  = "PITRMSTR"
	fileVersion  = 1
	masterName   = "wal-master"
	segPrefix    = "wal-"
	segSuffix    = ".seg"
	freePrefix   = "wal-free-"
	minSegmentSz = 4 * 1024
)

// FileWALStats counts the durable layer's physical work.
type FileWALStats struct {
	Persists         int64 // Persist calls (stable-prefix advances)
	BytesPersisted   int64
	Fsyncs           int64 // data-path fsyncs (commit + segment roll)
	MasterWrites     int64
	SegmentsCreated  int64 // brand-new segment files
	SegmentsRecycled int64 // segments reused from the free pool
	SegmentsRetired  int64 // segments dropped below the recycle horizon
	ReplayRecords    int64 // records accepted by the last replay
	ReplayTruncated  int64 // bytes discarded at the corrupt/torn tail
}

type segMeta struct {
	base uint64
	cap  uint64
	path string
}

// FileWAL is a StableSink over a directory of WAL segment files. All
// methods are called under the owning Log's mutex (the Log serializes
// Persist/Commit/NoteCheckpoint/Recycle), but FileWAL carries its own
// mutex so direct use from tests is safe too.
type FileWAL struct {
	dir    string
	segCap uint64
	policy SyncPolicy

	mu      sync.Mutex
	pos     uint64 // next byte offset to persist (LSN space)
	cur     *os.File
	curBase uint64
	live    []segMeta // durable segments in base order, excluding cur? no: including cur
	free    []string  // recycled segment files awaiting reuse
	freeSeq int
	ckpt    LSN
	horizon LSN
	closed  bool

	// pendSync holds segments rolled out of the active position whose
	// fsync was deferred to the next Commit (SyncAlways only), so the
	// write stage never pays device latency for a roll. Commit drains it
	// before syncing the active segment.
	pendSync []*os.File
	iov      [][]byte // reusable per-segment iovec batch for PersistV

	stats FileWALStats
}

// OpenFileWAL opens (or creates) a file-backed WAL in dir. If the
// directory holds a previous incarnation's log it is replayed: the
// returned Reader covers the valid stable prefix (nil if the log is
// empty) and the writer is positioned at its end, with any corrupt or
// torn tail physically truncated. segSize is the data capacity per
// segment (0 means DefaultSegmentSize; clamped to a sane minimum).
func OpenFileWAL(dir string, segSize int, policy SyncPolicy) (*FileWAL, *Reader, error) {
	if segSize <= 0 {
		segSize = DefaultSegmentSize
	}
	if segSize < minSegmentSz {
		segSize = minSegmentSz
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	fw := &FileWAL{dir: dir, segCap: uint64(segSize), policy: policy, pos: 1}
	rd, err := fw.replay()
	if err != nil {
		fw.Close()
		return nil, nil, err
	}
	return fw, rd, nil
}

// Stats returns a snapshot of the physical-work counters.
func (fw *FileWAL) Stats() FileWALStats {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return fw.stats
}

// Dir returns the WAL directory.
func (fw *FileWAL) Dir() string { return fw.dir }

// Close closes the active segment file and any roll-deferred segments.
// It does not sync: callers that need durability force the log first.
func (fw *FileWAL) Close() error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	fw.closed = true
	for _, f := range fw.pendSync {
		f.Close()
	}
	fw.pendSync = nil
	if fw.cur != nil {
		err := fw.cur.Close()
		fw.cur = nil
		return err
	}
	return nil
}

func segName(base uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, base, segSuffix)
}

func encodeSegHeader(b []byte, segCap, base uint64) {
	copy(b[0:8], segMagic)
	binary.LittleEndian.PutUint32(b[8:], fileVersion)
	binary.LittleEndian.PutUint32(b[12:], uint32(segCap))
	binary.LittleEndian.PutUint64(b[16:], base)
	binary.LittleEndian.PutUint32(b[24:], crc32.Checksum(b[0:24], crcTable))
	binary.LittleEndian.PutUint32(b[28:], 0)
}

func decodeSegHeader(b []byte) (segCap, base uint64, ok bool) {
	if len(b) < segHdrLen || string(b[0:8]) != segMagic {
		return 0, 0, false
	}
	if binary.LittleEndian.Uint32(b[8:]) != fileVersion {
		return 0, 0, false
	}
	if binary.LittleEndian.Uint32(b[24:]) != crc32.Checksum(b[0:24], crcTable) {
		return 0, 0, false
	}
	return uint64(binary.LittleEndian.Uint32(b[12:])), binary.LittleEndian.Uint64(b[16:]), true
}

// writeMaster durably replaces the master record via tmp+rename.
// Caller holds fw.mu.
func (fw *FileWAL) writeMaster() error {
	var b [masterLen]byte
	copy(b[0:8], masterMagic)
	binary.LittleEndian.PutUint32(b[8:], fileVersion)
	binary.LittleEndian.PutUint64(b[12:], uint64(fw.ckpt))
	binary.LittleEndian.PutUint64(b[20:], uint64(fw.horizon))
	binary.LittleEndian.PutUint32(b[28:], crc32.Checksum(b[0:28], crcTable))
	tmp := filepath.Join(fw.dir, masterName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b[:]); err != nil {
		f.Close()
		return err
	}
	if fw.policy != SyncNever {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		fw.stats.Fsyncs++
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(fw.dir, masterName)); err != nil {
		return err
	}
	fw.stats.MasterWrites++
	return fw.syncDir()
}

func (fw *FileWAL) readMaster() (ckpt, horizon LSN, ok bool) {
	b, err := os.ReadFile(filepath.Join(fw.dir, masterName))
	if err != nil || len(b) < masterLen || string(b[0:8]) != masterMagic {
		return 0, 0, false
	}
	if binary.LittleEndian.Uint32(b[8:]) != fileVersion {
		return 0, 0, false
	}
	if binary.LittleEndian.Uint32(b[28:]) != crc32.Checksum(b[0:28], crcTable) {
		return 0, 0, false
	}
	return LSN(binary.LittleEndian.Uint64(b[12:])), LSN(binary.LittleEndian.Uint64(b[20:])), true
}

func (fw *FileWAL) syncDir() error {
	if fw.policy == SyncNever {
		return nil
	}
	d, err := os.Open(fw.dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	d.Close()
	if err == nil {
		fw.stats.Fsyncs++
	}
	return err
}

// toFree renames path into the free pool for later reuse.
// Caller holds fw.mu.
func (fw *FileWAL) toFree(path string) {
	fw.freeSeq++
	dst := filepath.Join(fw.dir, fmt.Sprintf("%s%d%s", freePrefix, fw.freeSeq, segSuffix))
	if err := os.Rename(path, dst); err == nil {
		fw.free = append(fw.free, dst)
	} else {
		os.Remove(path)
	}
}

// replay scans the directory, validates and stitches the segment chain,
// walks the record stream from the horizon truncating at the first
// corrupt record, physically truncates the torn tail, and positions the
// writer at the end. Caller is OpenFileWAL (no lock needed yet).
func (fw *FileWAL) replay() (*Reader, error) {
	entries, err := os.ReadDir(fw.dir)
	if err != nil {
		return nil, err
	}
	var ckpt, horizon LSN
	masterOK := false
	if c, h, ok := fw.readMaster(); ok {
		ckpt, horizon, masterOK = c, h, true
	}
	start := uint64(horizon)
	if start < 1 {
		start = 1
	}

	var segs []segMeta
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		path := filepath.Join(fw.dir, name)
		if strings.HasPrefix(name, freePrefix) {
			fw.free = append(fw.free, path)
			idxStr := strings.TrimSuffix(strings.TrimPrefix(name, freePrefix), segSuffix)
			if n, err := strconv.Atoi(idxStr); err == nil && n > fw.freeSeq {
				fw.freeSeq = n
			}
			continue
		}
		hdr := make([]byte, segHdrLen)
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		n, _ := f.ReadAt(hdr, 0)
		f.Close()
		segCap, base, ok := decodeSegHeader(hdr[:n])
		if !ok {
			// A crash between creating/renaming a segment file and
			// completing its header leaves an unparseable file; no data
			// was ever persisted into it, so it is safely recyclable.
			fw.toFree(path)
			continue
		}
		if base+segCap <= uint64(horizon) {
			// Dead segment that survived a crash mid-recycle: the master
			// horizon already covers it.
			fw.stats.SegmentsRetired++
			fw.toFree(path)
			continue
		}
		segs = append(segs, segMeta{base: base, cap: segCap, path: path})
	}

	if len(segs) == 0 {
		if horizon > 1 {
			return nil, fmt.Errorf("wal: master horizon %d but no segments: %w", horizon, ErrShortSegment)
		}
		fw.ckpt, fw.horizon = 0, 1
		fw.pos = 1
		return nil, nil
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })
	if !masterOK && segs[0].base > 0 {
		// Recycling always writes the master first, so a missing master
		// with a truncated chain means the master itself was lost.
		return nil, fmt.Errorf("wal: segment chain starts at %d with no master record: %w", segs[0].base, ErrShortSegment)
	}
	if segs[0].base > start {
		return nil, fmt.Errorf("wal: horizon %d precedes first segment base %d: %w", start, segs[0].base, ErrShortSegment)
	}
	fw.segCap = segs[0].cap

	// Stitch the chain: contiguous bases, full-capacity interior
	// segments. A short interior segment orphans everything after it
	// (those records are unreachable without the missing bytes), so the
	// chain is cut there.
	var chain []segMeta
	end := uint64(0)
	for i, s := range segs {
		if s.cap != fw.segCap {
			return nil, fmt.Errorf("wal: segment %s capacity %d != %d: %w", filepath.Base(s.path), s.cap, fw.segCap, ErrShortSegment)
		}
		if i > 0 && s.base != chain[len(chain)-1].base+fw.segCap {
			return nil, fmt.Errorf("wal: segment gap between base %d and %d: %w", chain[len(chain)-1].base, s.base, ErrShortSegment)
		}
		st, err := os.Stat(s.path)
		if err != nil {
			return nil, err
		}
		if st.Size() < segHdrLen {
			return nil, fmt.Errorf("wal: segment %s shorter than header: %w", filepath.Base(s.path), ErrShortSegment)
		}
		dataLen := uint64(st.Size()) - segHdrLen
		if dataLen > s.cap {
			dataLen = s.cap
		}
		chain = append(chain, s)
		end = s.base + dataLen
		if dataLen < s.cap {
			// Short segment: the stream ends here; later segments (if
			// any) are unreachable.
			for _, o := range segs[i+1:] {
				fw.stats.SegmentsRetired++
				fw.toFree(o.path)
			}
			break
		}
	}
	if end < start {
		end = start
	}

	// Load the byte stream and walk records from the horizon.
	buf := make([]byte, end)
	for _, s := range chain {
		hi := s.base + fw.segCap
		if hi > end {
			hi = end
		}
		if hi <= s.base {
			continue
		}
		f, err := os.Open(s.path)
		if err != nil {
			return nil, err
		}
		_, err = f.ReadAt(buf[s.base:hi], segHdrLen)
		f.Close()
		if err != nil {
			return nil, err
		}
	}
	pos := start
	var rec Record
	for pos < end {
		n, err := decodeSharedInto(buf[pos:], &rec)
		if err != nil || rec.LSN != LSN(pos) {
			break
		}
		fw.stats.ReplayRecords++
		pos += uint64(n)
	}
	fw.stats.ReplayTruncated = int64(end - pos)
	end = pos

	// Physically truncate the torn tail so stale bytes from this
	// incarnation can never be misread as stable by the next one (a
	// once-valid record at the same offset would pass both CRC and LSN
	// checks).
	last := -1
	for i, s := range chain {
		if s.base < end || (i == 0 && end <= s.base) {
			last = i
		}
	}
	for i, s := range chain {
		if i > last {
			fw.stats.SegmentsRetired++
			fw.toFree(s.path)
			continue
		}
		if i == last {
			off := int64(segHdrLen)
			if end > s.base {
				off += int64(end - s.base)
			}
			if err := os.Truncate(s.path, off); err != nil {
				return nil, err
			}
		}
		fw.live = append(fw.live, s)
	}

	// Position the writer at end, inside the last live segment.
	tail := fw.live[len(fw.live)-1]
	f, err := os.OpenFile(tail.path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	fw.cur = f
	fw.curBase = tail.base
	fw.pos = end
	fw.ckpt, fw.horizon = ckpt, horizon
	if fw.horizon < 1 {
		fw.horizon = 1
	}

	if end <= 1 {
		return nil, nil
	}
	rdCkpt := ckpt
	if rdCkpt >= LSN(end) || rdCkpt < LSN(start) {
		if horizon > 1 {
			return nil, fmt.Errorf("wal: checkpoint anchor %d outside replayable range [%d,%d): %w", rdCkpt, start, end, ErrCorruptRecord)
		}
		rdCkpt = NilLSN
	}
	return &Reader{buf: buf[:end], ckptLSN: rdCkpt, start: LSN(start)}, nil
}

// roll finalizes the active segment and opens the next one, reusing a
// free file when available. Caller holds fw.mu.
func (fw *FileWAL) roll() error {
	newBase := uint64(0)
	if fw.cur != nil {
		if fw.policy == SyncNever {
			if err := fw.cur.Close(); err != nil {
				return err
			}
		} else {
			// Defer the rolled segment's fsync+close to the next Commit:
			// the stable point has not advanced over these bytes yet, and
			// Commit drains pendSync before syncing the active segment,
			// so durability-on-ack is unchanged while the write stage
			// never stalls on the device.
			fw.pendSync = append(fw.pendSync, fw.cur)
		}
		fw.cur = nil
		newBase = fw.curBase + fw.segCap
	}
	path := filepath.Join(fw.dir, segName(newBase))
	var f *os.File
	var err error
	if n := len(fw.free); n > 0 {
		src := fw.free[n-1]
		fw.free = fw.free[:n-1]
		if err = os.Rename(src, path); err != nil {
			return err
		}
		if f, err = os.OpenFile(path, os.O_RDWR, 0o644); err != nil {
			return err
		}
		// Drop the previous life's bytes: stale records self-invalidate
		// via the LSN check, but truncating keeps replay from even
		// reading them.
		if err = f.Truncate(segHdrLen); err != nil {
			f.Close()
			return err
		}
		fw.stats.SegmentsRecycled++
	} else {
		if f, err = os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644); err != nil {
			return err
		}
		fw.stats.SegmentsCreated++
	}
	hdr := make([]byte, segHdrLen)
	encodeSegHeader(hdr, fw.segCap, newBase)
	if _, err = f.WriteAt(hdr, 0); err != nil {
		f.Close()
		return err
	}
	fw.cur = f
	fw.curBase = newBase
	fw.live = append(fw.live, segMeta{base: newBase, cap: fw.segCap, path: path})
	return fw.syncDir()
}

// Persist writes the log bytes [from, from+len(b)) into segment files.
// Ranges arrive contiguous and in order from the Log's stable-prefix
// advancement.
func (fw *FileWAL) Persist(from LSN, b []byte) error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if fw.closed {
		return errors.New("wal: file sink closed")
	}
	if uint64(from) != fw.pos {
		return fmt.Errorf("wal: non-contiguous persist at %d, expected %d", from, fw.pos)
	}
	fw.stats.Persists++
	fw.stats.BytesPersisted += int64(len(b))
	for len(b) > 0 {
		if fw.cur == nil || fw.pos == fw.curBase+fw.segCap {
			if err := fw.roll(); err != nil {
				return err
			}
		}
		n := fw.curBase + fw.segCap - fw.pos
		if n > uint64(len(b)) {
			n = uint64(len(b))
		}
		if _, err := fw.cur.WriteAt(b[:n], int64(segHdrLen+(fw.pos-fw.curBase))); err != nil {
			return err
		}
		fw.pos += n
		b = b[n:]
	}
	return nil
}

// PersistV writes the log bytes starting at from from a sequence of
// buffers in as few syscalls as possible: all buffers landing in one
// segment file go down in a single pwritev-style vectored write,
// including the segment-crossing case (the batch is split at each
// segment boundary). Ranges arrive contiguous and in order from the
// Log's write stage.
func (fw *FileWAL) PersistV(from LSN, bufs [][]byte) error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if fw.closed {
		return errors.New("wal: file sink closed")
	}
	if uint64(from) != fw.pos {
		return fmt.Errorf("wal: non-contiguous persist at %d, expected %d", from, fw.pos)
	}
	fw.stats.Persists++
	var cur []byte
	bi := 0
	for {
		for len(cur) == 0 {
			if bi >= len(bufs) {
				return nil
			}
			cur = bufs[bi]
			bi++
		}
		if fw.cur == nil || fw.pos == fw.curBase+fw.segCap {
			if err := fw.roll(); err != nil {
				return err
			}
		}
		// Gather every buffer (or buffer prefix) that fits in the active
		// segment into one iovec batch.
		room := fw.curBase + fw.segCap - fw.pos
		off := int64(segHdrLen + (fw.pos - fw.curBase))
		iov := fw.iov[:0]
		n := uint64(0)
		for room > 0 {
			if len(cur) == 0 {
				if bi >= len(bufs) {
					break
				}
				cur = bufs[bi]
				bi++
				continue
			}
			take := uint64(len(cur))
			if take > room {
				take = room
			}
			iov = append(iov, cur[:take])
			cur = cur[take:]
			room -= take
			n += take
		}
		fw.iov = iov
		if n == 0 {
			continue
		}
		if err := pwritev(fw.cur, iov, off); err != nil {
			return err
		}
		for i := range iov {
			iov[i] = nil
		}
		fw.pos += n
		fw.stats.BytesPersisted += int64(n)
	}
}

// Commit makes everything persisted so far durable, per policy: it
// drains the roll-deferred segment fsyncs, then syncs the active
// segment. The fsyncs run outside fw.mu so the write stage (Persist
// into the active segment) proceeds concurrently — callers (the Log's
// sync stage) already serialize Commit itself.
func (fw *FileWAL) Commit() error {
	fw.mu.Lock()
	if fw.policy == SyncNever || fw.closed {
		fw.mu.Unlock()
		return nil
	}
	pend := fw.pendSync
	fw.pendSync = nil
	cur := fw.cur
	fw.mu.Unlock()

	var nsync int64
	fail := func(err error) error {
		for _, f := range pend {
			f.Close()
		}
		return err
	}
	for len(pend) > 0 {
		f := pend[0]
		pend = pend[1:]
		if err := f.Sync(); err != nil {
			f.Close()
			return fail(err)
		}
		nsync++
		if err := f.Close(); err != nil {
			return fail(err)
		}
	}
	if cur != nil {
		if err := cur.Sync(); err != nil {
			return err
		}
		nsync++
	}
	fw.mu.Lock()
	fw.stats.Fsyncs += nsync
	fw.mu.Unlock()
	return nil
}

// Rewind truncates the persisted stream back to `to`, dropping
// written-but-unsynced bytes after a failed or torn sync so the files
// agree with the in-memory stable point. Segments wholly at or beyond
// the rewind point go back to the free pool; the segment containing the
// rewind point becomes the (truncated) active segment. The owning Log
// is latched damaged by the caller, so no further Persist follows.
func (fw *FileWAL) Rewind(to LSN) error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	t := uint64(to)
	if fw.closed || t >= fw.pos {
		return nil
	}
	if fw.cur != nil {
		fw.cur.Close()
		fw.cur = nil
	}
	for _, f := range fw.pendSync {
		f.Close()
	}
	fw.pendSync = nil
	keep := fw.live[:0]
	for _, s := range fw.live {
		if s.base >= t {
			fw.stats.SegmentsRetired++
			fw.toFree(s.path)
			continue
		}
		keep = append(keep, s)
	}
	fw.live = keep
	fw.pos = t
	fw.curBase = 0
	if len(fw.live) == 0 {
		return nil
	}
	tail := fw.live[len(fw.live)-1]
	f, err := os.OpenFile(tail.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if err := f.Truncate(int64(segHdrLen + (t - tail.base))); err != nil {
		f.Close()
		return err
	}
	fw.cur = f
	fw.curBase = tail.base
	return nil
}

// PersistPartial writes b at from without advancing the persisted
// position — the file-layer image of a device that tore mid-record.
// Best effort; clipped to the active segment.
func (fw *FileWAL) PersistPartial(from LSN, b []byte) error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if fw.cur == nil || uint64(from) < fw.curBase {
		return nil
	}
	off := uint64(from) - fw.curBase
	if off >= fw.segCap {
		return nil
	}
	if max := fw.segCap - off; uint64(len(b)) > max {
		b = b[:max]
	}
	_, err := fw.cur.WriteAt(b, int64(segHdrLen+off))
	return err
}

// NoteCheckpoint durably records the checkpoint anchor in the master
// file.
func (fw *FileWAL) NoteCheckpoint(lsn LSN) error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	fw.ckpt = lsn
	return fw.writeMaster()
}

// Recycle retires every segment wholly below horizon. The master record
// is durably updated with the new horizon BEFORE any segment is touched:
// if the process dies between the two steps, replay sees the new horizon
// and ignores the dead segments whether or not their files survived.
func (fw *FileWAL) Recycle(horizon LSN) error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if horizon <= fw.horizon {
		return nil
	}
	fw.horizon = horizon
	if err := fw.writeMaster(); err != nil {
		return err
	}
	keep := fw.live[:0]
	for _, s := range fw.live {
		if s.base+s.cap <= uint64(horizon) && s.base != fw.curBase {
			fw.stats.SegmentsRetired++
			fw.toFree(s.path)
			continue
		}
		keep = append(keep, s)
	}
	fw.live = keep
	return nil
}
