package wal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fileAppendN appends n records with recognizable payloads and forces them.
func fileAppendN(t *testing.T, l *Log, n int, tag byte) []LSN {
	t.Helper()
	var lsns []LSN
	for i := 0; i < n; i++ {
		pl := make([]byte, 10+i%23)
		for j := range pl {
			pl[j] = tag + byte(i%7)
		}
		lsns = append(lsns, l.Append(&Record{
			Type: RecUpdate, Kind: Kind(i % 5), TxnID: TxnID(i + 1),
			StoreID: 1, PageID: uint64(i + 2), Payload: pl,
		}))
	}
	if err := l.ForceAll(); err != nil {
		t.Fatalf("force: %v", err)
	}
	return lsns
}

// replayRecords reopens dir and returns the replayed record LSNs.
func replayRecords(t *testing.T, dir string, segSize int) (*FileWAL, *Reader, []LSN) {
	t.Helper()
	fw, rd, err := OpenFileWAL(dir, segSize, SyncNever)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	var got []LSN
	if rd != nil {
		rd.Scan(NilLSN, func(rec Record) bool {
			got = append(got, rec.LSN)
			return true
		})
	}
	return fw, rd, got
}

func TestFileWALRoundtrip(t *testing.T) {
	dir := t.TempDir()
	fw, rd, err := OpenFileWAL(dir, 0, SyncAlways)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if rd != nil {
		t.Fatalf("fresh dir produced a reader")
	}
	l := New()
	l.SetSink(fw)
	lsns := fileAppendN(t, l, 100, 'a')
	end := l.StableLSN()
	fw.Close()

	fw2, rd2, got := replayRecords(t, dir, 0)
	defer fw2.Close()
	if rd2 == nil {
		t.Fatalf("no reader after replay")
	}
	if rd2.EndLSN() != end {
		t.Fatalf("replay end %d, want %d", rd2.EndLSN(), end)
	}
	if len(got) != len(lsns) {
		t.Fatalf("replayed %d records, want %d", len(got), len(lsns))
	}
	for i, lsn := range lsns {
		if got[i] != lsn {
			t.Fatalf("record %d at %d, want %d", i, got[i], lsn)
		}
	}
	// Payload integrity through the round trip.
	rec, err := rd2.Read(lsns[7])
	if err != nil || len(rec.Payload) == 0 || rec.TxnID != 8 {
		t.Fatalf("read back record 7: %+v err=%v", rec, err)
	}

	// The log continues across the restart: new appends replay too.
	l2 := NewFromImage(rd2)
	l2.SetSink(fw2)
	more := fileAppendN(t, l2, 50, 'b')
	fw2.Close()
	_, _, got2 := replayRecords(t, dir, 0)
	if len(got2) != len(lsns)+len(more) {
		t.Fatalf("after continue: %d records, want %d", len(got2), len(lsns)+len(more))
	}
}

// TestFileWALCorruptTailTruncation flips every byte of the last record
// (and a swath of an interior one) and asserts replay truncates exactly
// at the first corrupt record without panicking — no ghost records, no
// lost intact prefix.
func TestFileWALCorruptTailTruncation(t *testing.T) {
	dir := t.TempDir()
	fw, _, err := OpenFileWAL(dir, 0, SyncNever)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	l := New()
	l.SetSink(fw)
	lsns := fileAppendN(t, l, 40, 'c')
	end := uint64(l.StableLSN())
	fw.Close()

	seg := filepath.Join(dir, segName(0))
	orig, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	last := uint64(lsns[len(lsns)-1])
	for off := last; off < end; off++ {
		mut := append([]byte(nil), orig...)
		mut[segHdrLen+off] ^= 0xA5
		if err := os.WriteFile(seg, mut, 0o644); err != nil {
			t.Fatalf("write mutated segment: %v", err)
		}
		fw2, rd2, got := replayRecords(t, dir, 0)
		fw2.Close()
		if want := len(lsns) - 1; len(got) != want {
			t.Fatalf("flip at %d: replayed %d records, want %d", off, len(got), want)
		}
		if rd2.EndLSN() != LSN(last) {
			t.Fatalf("flip at %d: end %d, want truncation at %d", off, rd2.EndLSN(), last)
		}
		// replay physically truncates; restore the full image for the
		// next offset.
		if err := os.WriteFile(seg, orig, 0o644); err != nil {
			t.Fatalf("restore segment: %v", err)
		}
	}

	// An interior flip truncates there, keeping everything before it.
	mid := uint64(lsns[11])
	for delta := uint64(0); delta < uint64(lsns[12])-mid; delta += 3 {
		mut := append([]byte(nil), orig...)
		mut[segHdrLen+mid+delta] ^= 0xFF
		if err := os.WriteFile(seg, mut, 0o644); err != nil {
			t.Fatalf("write mutated segment: %v", err)
		}
		fw2, rd2, got := replayRecords(t, dir, 0)
		fw2.Close()
		if len(got) != 11 {
			t.Fatalf("interior flip at +%d: replayed %d records, want 11", delta, len(got))
		}
		if rd2.EndLSN() != lsns[11] {
			t.Fatalf("interior flip at +%d: end %d, want %d", delta, rd2.EndLSN(), lsns[11])
		}
		if err := os.WriteFile(seg, orig, 0o644); err != nil {
			t.Fatalf("restore segment: %v", err)
		}
	}
}

func TestFileWALSegmentRollAndRecycle(t *testing.T) {
	dir := t.TempDir()
	const segSz = 4096
	fw, _, err := OpenFileWAL(dir, segSz, SyncNever)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	l := New()
	l.SetSink(fw)
	lsns := fileAppendN(t, l, 600, 'd') // ~40KB: spans many 4K segments
	st := fw.Stats()
	if st.SegmentsCreated < 5 {
		t.Fatalf("expected several segments, created %d", st.SegmentsCreated)
	}

	// Recycle below a mid-log record: master first, then retirement.
	anchor := lsns[500]
	horizon := lsns[400]
	if err := fw.NoteCheckpoint(anchor); err != nil {
		t.Fatalf("note checkpoint: %v", err)
	}
	if err := fw.Recycle(horizon); err != nil {
		t.Fatalf("recycle: %v", err)
	}
	st = fw.Stats()
	if st.SegmentsRetired == 0 {
		t.Fatalf("recycle retired no segments (horizon %d)", horizon)
	}

	// More appends must reuse retired files rather than growing the dir.
	fileAppendN(t, l, 600, 'e')
	if got := fw.Stats().SegmentsRecycled; got == 0 {
		t.Fatalf("no segments recycled on continued append")
	}
	end := l.StableLSN()
	fw.Close()

	fw2, rd2, got := replayRecords(t, dir, segSz)
	defer fw2.Close()
	if rd2 == nil {
		t.Fatalf("no reader after recycled replay")
	}
	if rd2.EndLSN() != end {
		t.Fatalf("replay end %d, want %d", rd2.EndLSN(), end)
	}
	if rd2.StartLSN() != horizon {
		t.Fatalf("replay start %d, want horizon %d", rd2.StartLSN(), horizon)
	}
	if rd2.CheckpointLSN() != anchor {
		t.Fatalf("replay anchor %d, want %d", rd2.CheckpointLSN(), anchor)
	}
	if len(got) == 0 || got[0] != horizon {
		t.Fatalf("scan starts at %v, want %d", got[:min(len(got), 1)], horizon)
	}
	// Reads below the horizon are rejected, at it and above they work.
	if _, err := rd2.Read(lsns[100]); err == nil {
		t.Fatalf("read below horizon succeeded")
	}
	if _, err := rd2.Read(lsns[450]); err != nil {
		t.Fatalf("read above horizon: %v", err)
	}
}

// TestFileWALRecycleVsReplayRace covers the crash window inside Recycle:
// the master (with the advanced horizon) is durable but dead segment
// files still exist. Replay must ignore them and start at the horizon.
func TestFileWALRecycleVsReplayRace(t *testing.T) {
	dir := t.TempDir()
	const segSz = 4096
	fw, _, err := OpenFileWAL(dir, segSz, SyncNever)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	l := New()
	l.SetSink(fw)
	lsns := fileAppendN(t, l, 600, 'f')
	end := l.StableLSN()
	anchor, horizon := lsns[500], lsns[400]
	if err := fw.NoteCheckpoint(anchor); err != nil {
		t.Fatalf("note checkpoint: %v", err)
	}
	// Write the master the way Recycle does, then "crash" before any
	// segment is renamed: every dead segment survives on disk.
	fw.mu.Lock()
	fw.horizon = horizon
	err = fw.writeMaster()
	fw.mu.Unlock()
	if err != nil {
		t.Fatalf("write master: %v", err)
	}
	fw.Close()

	fw2, rd2, got := replayRecords(t, dir, segSz)
	if rd2 == nil || rd2.StartLSN() != horizon || rd2.EndLSN() != end {
		t.Fatalf("replay start/end = %v/%v, want %d/%d", rd2.StartLSN(), rd2.EndLSN(), horizon, end)
	}
	if got[0] != horizon {
		t.Fatalf("first replayed record %d, want %d", got[0], horizon)
	}
	// The dead segments were recognized and pooled for reuse.
	if fw2.Stats().SegmentsRetired == 0 {
		t.Fatalf("replay did not retire dead segments")
	}
	fw2.Close()
}

func TestFileWALShortSegment(t *testing.T) {
	dir := t.TempDir()
	const segSz = 4096
	fw, _, err := OpenFileWAL(dir, segSz, SyncNever)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	l := New()
	l.SetSink(fw)
	fileAppendN(t, l, 600, 'g')
	fw.Close()

	// Remove an interior segment: the chain has a gap.
	ents, _ := os.ReadDir(dir)
	var segs []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), segPrefix) && !strings.HasPrefix(e.Name(), freePrefix) && e.Name() != masterName {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) < 3 {
		t.Fatalf("want >=3 segments, have %d", len(segs))
	}
	victim := filepath.Join(dir, segs[1])
	blob, _ := os.ReadFile(victim)
	if err := os.Remove(victim); err != nil {
		t.Fatalf("remove: %v", err)
	}
	_, _, err = OpenFileWAL(dir, segSz, SyncNever)
	if !errors.Is(err, ErrShortSegment) {
		t.Fatalf("gap replay error = %v, want ErrShortSegment", err)
	}

	// A truncated interior segment cuts the chain there instead.
	if err := os.WriteFile(victim, blob[:len(blob)-100], 0o644); err != nil {
		t.Fatalf("restore truncated: %v", err)
	}
	fw2, rd2, err := OpenFileWAL(dir, segSz, SyncNever)
	if err != nil {
		t.Fatalf("truncated interior replay: %v", err)
	}
	// The stream must end inside the victim (second) segment: later
	// segments are unreachable without its missing bytes.
	if rd2 == nil || rd2.EndLSN() > LSN(segSz*2+1) {
		t.Fatalf("replay end %v ran past the truncated segment", rd2.EndLSN())
	}
	fw2.Close()
}

// TestFileWALStaleRecycledBytes verifies the LSN-continuity check: a
// recycled segment's stale-but-intact records carry their old LSNs and
// must not replay at the new position.
func TestFileWALStaleRecycledBytes(t *testing.T) {
	dir := t.TempDir()
	fw, _, err := OpenFileWAL(dir, 0, SyncNever)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	l := New()
	l.SetSink(fw)
	lsns := fileAppendN(t, l, 20, 'h')
	end := uint64(l.StableLSN())
	fw.Close()

	// Graft the bytes of records 10.. onto the end of the log at a
	// position they do not belong: intact CRC, wrong position.
	seg := filepath.Join(dir, segName(0))
	blob, _ := os.ReadFile(seg)
	stale := append([]byte(nil), blob[segHdrLen+lsns[10]:]...)
	blob = append(blob, stale...)
	if err := os.WriteFile(seg, blob, 0o644); err != nil {
		t.Fatalf("graft: %v", err)
	}
	fw2, rd2, got := replayRecords(t, dir, 0)
	fw2.Close()
	if len(got) != len(lsns) {
		t.Fatalf("replayed %d records, want %d (stale bytes accepted?)", len(got), len(lsns))
	}
	if rd2.EndLSN() != LSN(end) {
		t.Fatalf("replay end %d, want %d", rd2.EndLSN(), end)
	}
}
