package wal

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestAppendGroupRoundTrip(t *testing.T) {
	l := New()
	pre := l.Append(&Record{Type: RecBegin, TxnID: 1})
	recs := []*Record{
		{Type: RecUpdate, TxnID: 1, Kind: 7, StoreID: 3, PageID: 9, PrevLSN: pre, Payload: []byte("alpha")},
		{Type: RecUpdate, TxnID: 1, Kind: 8, StoreID: 3, PageID: 9, Payload: []byte("")},
		{Type: RecUpdate, TxnID: 1, Kind: 9, StoreID: 3, PageID: 9, Payload: bytes.Repeat([]byte("x"), 300)},
	}
	last := l.AppendGroup(recs)
	if last != recs[2].LSN {
		t.Fatalf("AppendGroup returned %d, last record got %d", last, recs[2].LSN)
	}
	// Records are contiguous, PrevLSN-chained within the group, and each
	// reads back intact.
	for i, r := range recs {
		got, err := l.Read(r.LSN)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got.Kind != r.Kind || !bytes.Equal(got.Payload, r.Payload) {
			t.Fatalf("record %d mismatch: %+v", i, got)
		}
		if i > 0 && got.PrevLSN != recs[i-1].LSN {
			t.Fatalf("record %d PrevLSN = %d, want %d", i, got.PrevLSN, recs[i-1].LSN)
		}
	}
	if recs[0].PrevLSN != pre {
		t.Fatalf("first record PrevLSN = %d, want caller-set %d", recs[0].PrevLSN, pre)
	}
	// A following append lands after the group with no gap or overlap.
	next := l.Append(&Record{Type: RecCommit, TxnID: 1})
	if next <= last {
		t.Fatalf("append after group got %d <= %d", next, last)
	}
	if l.AppendGroup(nil) != NilLSN {
		t.Fatal("empty group should return NilLSN")
	}
}

// TestAppendGroupSegmentStraddle forces a group across a segment boundary
// (segments are 64 KiB of reserved space) and checks every record scans
// back.
func TestAppendGroupSegmentStraddle(t *testing.T) {
	l := New()
	big := bytes.Repeat([]byte("y"), 7000)
	total := 0
	for total < 3*(1<<16) {
		recs := make([]*Record, 4)
		for i := range recs {
			recs[i] = &Record{Type: RecUpdate, TxnID: 5, Kind: Kind(i), PageID: uint64(i), Payload: big}
			total += len(big)
		}
		l.AppendGroup(recs)
		for i, r := range recs {
			got, err := l.Read(r.LSN)
			if err != nil {
				t.Fatalf("read group rec %d at %d: %v", i, r.LSN, err)
			}
			if !bytes.Equal(got.Payload, big) {
				t.Fatalf("payload mismatch at %d", r.LSN)
			}
		}
	}
}

// TestAppendGroupConcurrent interleaves group and single appends from
// many goroutines; every record must read back with its own identity
// (the group reservation must never overlap another writer's space).
func TestAppendGroupConcurrent(t *testing.T) {
	l := New()
	const workers = 8
	const rounds = 200
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if r%3 == 0 {
					lsn := l.Append(&Record{Type: RecUpdate, TxnID: TxnID(w), PageID: uint64(r), Payload: []byte(fmt.Sprintf("s-%d-%d", w, r))})
					got, err := l.Read(lsn)
					if err != nil || got.PageID != uint64(r) {
						errs <- fmt.Errorf("worker %d single %d: %v %+v", w, r, err, got)
						return
					}
					continue
				}
				recs := make([]*Record, 1+r%5)
				for i := range recs {
					recs[i] = &Record{Type: RecUpdate, TxnID: TxnID(w), Kind: Kind(i), PageID: uint64(r), Payload: []byte(fmt.Sprintf("g-%d-%d-%d", w, r, i))}
				}
				l.AppendGroup(recs)
				for i, rec := range recs {
					got, err := l.Read(rec.LSN)
					if err != nil || got.TxnID != TxnID(w) || got.Kind != Kind(i) ||
						!bytes.Equal(got.Payload, []byte(fmt.Sprintf("g-%d-%d-%d", w, r, i))) {
						errs <- fmt.Errorf("worker %d group %d rec %d: %v %+v", w, r, i, err, got)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
