package wal

import (
	"sync"
	"testing"
)

// TestForceGroupDurability is the core contract: every ForceGroup(lsn)
// return implies the record at lsn is stable, no matter how many
// committers race.
func TestForceGroupDurability(t *testing.T) {
	l := New()
	const goroutines = 16
	const perG = 50
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				lsn := l.Append(&Record{Type: RecCommit, TxnID: TxnID(g + 1)})
				l.ForceGroup(lsn)
				if l.StableLSN() <= lsn {
					errs <- "ForceGroup returned before its LSN was stable"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	requests, rounds := l.GroupCommitStats()
	if requests != goroutines*perG {
		t.Fatalf("requests = %d, want %d", requests, goroutines*perG)
	}
	if rounds > requests {
		t.Fatalf("rounds %d > requests %d", rounds, requests)
	}
}

// TestForceGroupCoalesces checks the point of group commit: concurrent
// committers share force rounds, so the physical flush count stays well
// below the commit count. The leader yields once before picking its
// round's target, which is what lets same-CPU committers pile in, so
// even a single-CPU run coalesces heavily; we assert a conservative
// factor-of-two to stay robust to scheduling.
func TestForceGroupCoalesces(t *testing.T) {
	l := New()
	const goroutines = 32
	const perG = 25
	var start, wg sync.WaitGroup
	start.Add(1)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			start.Wait()
			for i := 0; i < perG; i++ {
				lsn := l.Append(&Record{Type: RecCommit, TxnID: TxnID(g + 1)})
				l.ForceGroup(lsn)
			}
		}(g)
	}
	start.Done()
	wg.Wait()
	const commits = goroutines * perG
	_, flushes := l.Stats()
	if flushes >= commits/2 {
		t.Fatalf("flushes = %d for %d commits; group commit is not coalescing", flushes, commits)
	}
	requests, rounds := l.GroupCommitStats()
	t.Logf("commits=%d flushes=%d rounds=%d requests=%d (%.2f commits/flush)",
		commits, flushes, rounds, requests, float64(commits)/float64(flushes))
}

// TestForceGroupAlreadyStable: a request whose LSN is already durable
// must return immediately without leading a round.
func TestForceGroupAlreadyStable(t *testing.T) {
	l := New()
	lsn := l.Append(&Record{Type: RecCommit, TxnID: 1})
	l.Force(lsn)
	_, flushesBefore := l.Stats()
	_, roundsBefore := l.GroupCommitStats()
	l.ForceGroup(lsn)
	if _, flushes := l.Stats(); flushes != flushesBefore {
		t.Fatal("ForceGroup flushed for an already-stable LSN")
	}
	if _, rounds := l.GroupCommitStats(); rounds != roundsBefore {
		t.Fatal("ForceGroup led a round for an already-stable LSN")
	}
}

// TestForceGroupNilLSN: NilLSN is a no-op, mirroring Force.
func TestForceGroupNilLSN(t *testing.T) {
	l := New()
	l.ForceGroup(NilLSN)
	if requests, rounds := l.GroupCommitStats(); requests != 0 || rounds != 0 {
		t.Fatalf("NilLSN counted: requests=%d rounds=%d", requests, rounds)
	}
}
