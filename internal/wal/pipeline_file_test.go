package wal

import (
	"testing"

	"repro/internal/fault"
)

// TestTornSyncRewindsFileSink: in the pipelined path the write stage
// may have handed bytes to the file sink before the sync tears. The
// rewind must truncate the segment files back to the tear boundary so a
// replay of the surviving files ends exactly at the in-memory stable
// point — no ghost records from written-but-unsynced bytes.
func TestTornSyncRewindsFileSink(t *testing.T) {
	dir := t.TempDir()
	fw, rd, err := OpenFileWAL(dir, 0, SyncAlways)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if rd != nil {
		t.Fatal("fresh dir produced a reader")
	}
	l := New()
	l.SetSink(fw)
	inj := fault.New(7)
	l.SetInjector(inj)

	fileAppendN(t, l, 20, 'a')
	preStable := l.StableLSN()

	inj.Arm(FPSync, fault.Spec{Kind: fault.Torn})
	lsns := appendN(l, 10)
	err = l.Force(lsns[9])
	if err == nil {
		t.Fatal("torn sync acked")
	}
	stable := l.StableLSN()
	if stable < preStable {
		t.Fatalf("stable point went backwards: %d -> %d", preStable, stable)
	}
	if !l.Damaged() {
		t.Fatal("log not latched damaged after torn sync")
	}
	fw.Close()

	fw2, rd2, _ := replayRecords(t, dir, 0)
	defer fw2.Close()
	end := LSN(1)
	if rd2 != nil {
		end = rd2.EndLSN()
	}
	if end != stable {
		t.Fatalf("file replay ends at %d, in-memory stable point is %d", end, stable)
	}
}

// TestPermanentSyncRewindsFileSink: a permanent sync failure leaves
// written-but-unsynced bytes in the sink; the rewind drops them so the
// files agree with the frozen stable point.
func TestPermanentSyncRewindsFileSink(t *testing.T) {
	dir := t.TempDir()
	fw, _, err := OpenFileWAL(dir, 0, SyncAlways)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	l := New()
	l.SetSink(fw)
	inj := fault.New(8)
	l.SetInjector(inj)

	fileAppendN(t, l, 20, 'c')
	stable := l.StableLSN()

	inj.Arm(FPSync, fault.Spec{Kind: fault.Permanent})
	lsns := appendN(l, 5)
	if err := l.Force(lsns[4]); err == nil {
		t.Fatal("force acked on a dead device")
	}
	if got := l.StableLSN(); got != stable {
		t.Fatalf("stable point moved %d -> %d on permanent failure", stable, got)
	}
	fw.Close()

	fw2, rd2, _ := replayRecords(t, dir, 0)
	defer fw2.Close()
	if rd2 == nil {
		t.Fatal("no reader after replay")
	}
	if rd2.EndLSN() != stable {
		t.Fatalf("file replay ends at %d, want the stable point %d", rd2.EndLSN(), stable)
	}
}

// TestPersistVSegmentCrossing: vectored persists that span both the
// in-memory 64KiB log segments and multiple on-disk segment files must
// replay byte-identically.
func TestPersistVSegmentCrossing(t *testing.T) {
	dir := t.TempDir()
	// Small on-disk segments force many rolls; payloads near the record
	// cap cross the in-memory segment boundary too.
	fw, _, err := OpenFileWAL(dir, minSegmentSz, SyncAlways)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	l := New()
	l.SetSink(fw)
	var lsns []LSN
	for i := 0; i < 300; i++ {
		pl := make([]byte, 200+i%800)
		for j := range pl {
			pl[j] = byte(i + j)
		}
		lsns = append(lsns, l.Append(&Record{
			Type: RecUpdate, TxnID: TxnID(i + 1), StoreID: 1,
			PageID: uint64(i + 2), Payload: pl,
		}))
		// Force in bursts so individual PersistV calls carry multi-record
		// vectored batches.
		if i%17 == 0 {
			if err := l.ForceGroup(lsns[len(lsns)-1]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.ForceAll(); err != nil {
		t.Fatal(err)
	}
	end := l.StableLSN()
	st := fw.Stats()
	if st.SegmentsCreated < 2 {
		t.Fatalf("only %d segments created; test did not cross file segments", st.SegmentsCreated)
	}
	fw.Close()

	fw2, rd2, got := replayRecords(t, dir, minSegmentSz)
	defer fw2.Close()
	if rd2 == nil || rd2.EndLSN() != end {
		t.Fatalf("replay end = %v, want %d", rd2, end)
	}
	if len(got) != len(lsns) {
		t.Fatalf("replayed %d records, want %d", len(got), len(lsns))
	}
	for i := range lsns {
		if got[i] != lsns[i] {
			t.Fatalf("record %d at %d, want %d", i, got[i], lsns[i])
		}
	}
	rec, err := rd2.Read(lsns[123])
	if err != nil || rec.TxnID != 124 {
		t.Fatalf("read back: %+v err=%v", rec, err)
	}
	for j, b := range rec.Payload {
		if b != byte(123+j) {
			t.Fatalf("payload byte %d corrupted through vectored persist", j)
		}
	}
}
