package wal

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
)

// TestPipelineOverlapsWriteAndSync: with every sync stalled by the
// wal.sync.slow latency failpoint, concurrent committers must start the
// next round's write stage while the previous round's sync is still in
// flight — the Overlaps counter observes it deterministically.
func TestPipelineOverlapsWriteAndSync(t *testing.T) {
	l, inj := newFaultyLog(1)
	inj.Arm(FPSyncSlow, fault.Spec{Kind: fault.None, Count: -1, Delay: 2 * time.Millisecond})

	const committers = 8
	const perG = 10
	var wg sync.WaitGroup
	for g := 0; g < committers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				lsn := l.Append(&Record{Type: RecCommit, TxnID: TxnID(g*perG + i + 1)})
				if err := l.ForceGroup(lsn); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := l.PipelineStatsSnapshot()
	if st.Overlaps == 0 {
		t.Fatalf("no write round overlapped a stalled sync: %+v", st)
	}
	if st.WriteRounds == 0 || st.SyncRounds == 0 {
		t.Fatalf("pipeline stages did not run: %+v", st)
	}
	if l.StableLSN() != l.EndLSN() {
		t.Fatalf("stable %d != end %d after all commits acked", l.StableLSN(), l.EndLSN())
	}
}

// TestSerialModeNeverOverlaps: with the pipeline off (the PR 8 baseline
// the T19 experiment compares against), rounds run strictly one at a
// time and durability is unchanged.
func TestSerialModeNeverOverlaps(t *testing.T) {
	l, inj := newFaultyLog(2)
	l.SetPipelined(false)
	inj.Arm(FPSyncSlow, fault.Spec{Kind: fault.None, Count: -1, Delay: time.Millisecond})

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				lsn := l.Append(&Record{Type: RecCommit, TxnID: TxnID(g*10 + i + 1)})
				if err := l.ForceGroup(lsn); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := l.PipelineStatsSnapshot()
	if st.Overlaps != 0 {
		t.Fatalf("serial mode overlapped rounds: %+v", st)
	}
	if l.StableLSN() != l.EndLSN() {
		t.Fatalf("stable %d != end %d", l.StableLSN(), l.EndLSN())
	}
}

// TestCrashBetweenWriteAndSync: a crash tripped at the wal.write point —
// bytes handed to the sink, fsync never issued — must freeze the stable
// point where it was. Nothing written-but-unsynced may ever be acked.
func TestCrashBetweenWriteAndSync(t *testing.T) {
	l, inj := newFaultyLog(3)
	lsns := appendN(l, 2)
	if err := l.Force(lsns[1]); err != nil {
		t.Fatal(err)
	}
	stable := l.StableLSN()

	inj.Arm(FPWrite, fault.Spec{Kind: fault.None, Crash: true})
	lsn := l.Append(&Record{Type: RecCommit, TxnID: 50})
	err := l.Force(lsn)
	if err == nil {
		t.Fatal("force acked across a crash between write and sync")
	}
	if !errors.Is(err, ErrLogFailed) {
		t.Fatalf("error %v missing ErrLogFailed", err)
	}
	if got := l.StableLSN(); got != stable {
		t.Fatalf("stable point moved %d -> %d across the crash", stable, got)
	}
	// The frozen stable prefix is exactly what a crash image replays.
	img := l.CrashImage(nil)
	if img.EndLSN() != stable {
		t.Fatalf("crash image ends at %d, want %d", img.EndLSN(), stable)
	}
}

// TestForceGroupPipelinedFailureNotAcked: a permanent sync fault under
// the pipelined group commit must fail every waiter whose record did
// not reach stability — same contract as the serial path.
func TestForceGroupPipelinedFailureNotAcked(t *testing.T) {
	l, inj := newFaultyLog(4)
	lsns := appendN(l, 2)
	if err := l.ForceGroup(lsns[1]); err != nil {
		t.Fatal(err)
	}
	inj.Arm(FPSync, fault.Spec{Kind: fault.Permanent})
	doomed := l.Append(&Record{Type: RecCommit, TxnID: 42})
	if err := l.ForceGroup(doomed); err == nil {
		t.Fatal("pipelined group commit acked a record on a dead device")
	}
	if !l.Damaged() {
		t.Fatal("log not latched damaged")
	}
	// Sticky for later committers too.
	lsn := l.Append(&Record{Type: RecCommit, TxnID: 99})
	if err := l.ForceGroup(lsn); err == nil {
		t.Fatal("commit acked on damaged log")
	}
}
