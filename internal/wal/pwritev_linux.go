//go:build linux

package wal

import (
	"os"
	"syscall"
	"unsafe"
)

// iovMax is the kernel's per-call iovec limit (IOV_MAX).
const iovMax = 1024

// pwritev writes bufs at off in a single vectored pwritev(2) syscall
// per iovMax batch, retrying on EINTR and resuming after short writes.
// Empty buffers are skipped.
func pwritev(f *os.File, bufs [][]byte, off int64) error {
	iov := make([]syscall.Iovec, 0, len(bufs))
	for _, b := range bufs {
		if len(b) == 0 {
			continue
		}
		iov = append(iov, syscall.Iovec{Base: &b[0], Len: uint64(len(b))})
	}
	fd := f.Fd()
	for len(iov) > 0 {
		n := len(iov)
		if n > iovMax {
			n = iovMax
		}
		// On 64-bit the full offset travels in pos_l; pos_h stays zero.
		r, _, e := syscall.Syscall6(syscall.SYS_PWRITEV, fd,
			uintptr(unsafe.Pointer(&iov[0])), uintptr(n), uintptr(off), 0, 0)
		if e == syscall.EINTR {
			continue
		}
		if e != 0 {
			return &os.PathError{Op: "pwritev", Path: f.Name(), Err: e}
		}
		wrote := int64(r)
		off += wrote
		for wrote > 0 && len(iov) > 0 {
			if uint64(wrote) >= iov[0].Len {
				wrote -= int64(iov[0].Len)
				iov = iov[1:]
			} else {
				iov[0].Base = (*byte)(unsafe.Pointer(uintptr(unsafe.Pointer(iov[0].Base)) + uintptr(wrote)))
				iov[0].Len -= uint64(wrote)
				wrote = 0
			}
		}
	}
	return nil
}
