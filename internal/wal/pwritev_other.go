//go:build !linux

package wal

import "os"

// pwritev portable fallback: one positional write per buffer.
func pwritev(f *os.File, bufs [][]byte, off int64) error {
	for _, b := range bufs {
		if len(b) == 0 {
			continue
		}
		if _, err := f.WriteAt(b, off); err != nil {
			return err
		}
		off += int64(len(b))
	}
	return nil
}
