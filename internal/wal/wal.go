// Package wal implements the write-ahead log the paper's recovery
// assumptions require (§4.3): every update is logged before the page it
// changed can reach the stable database, and atomic actions are only
// "relatively" durable — their commit records need not force the log,
// because the first dependent transaction commit forces it for them.
//
// The log is modeled as an append-only byte sequence. An LSN is the byte
// offset at which a record starts, so LSNs are monotone and recovery can
// scan from any record boundary. The tail of the sequence beyond the last
// Force is volatile: a simulated crash truncates it, exactly as a real
// system loses its unforced log buffer.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
)

// LSN is a log sequence number: the byte offset of a record's start in the
// log. NilLSN (0) means "no record"; the log begins at offset 1 so that 0
// is never a valid record position.
type LSN uint64

// NilLSN is the null LSN.
const NilLSN LSN = 0

// TxnID identifies a database transaction or an atomic action (which is a
// system transaction, one of the identification options of §4.3.2).
type TxnID uint64

// NilTxn is the null transaction ID.
const NilTxn TxnID = 0

// RecType discriminates log record types.
type RecType uint16

// Log record types. Update and CLR carry a Kind that the handler registry
// in package recovery dispatches on; the WAL itself never interprets
// payloads.
const (
	RecInvalid RecType = iota
	// RecBegin marks the start of a transaction or atomic action.
	RecBegin
	// RecCommit marks a commit. For user transactions commit forces the
	// log; atomic-action commits rely on relative durability and do not.
	RecCommit
	// RecAbort marks the decision to roll back.
	RecAbort
	// RecEnd marks the completion of commit or rollback processing.
	RecEnd
	// RecUpdate is a physiological page update with redo and undo parts.
	RecUpdate
	// RecCLR is a compensation log record written during undo; it is
	// redo-only and carries UndoNext, the next record of the transaction
	// to undo.
	RecCLR
	// RecCheckpoint carries the fuzzy-checkpoint snapshot (transaction
	// table and dirty page table) encoded by package recovery.
	RecCheckpoint
	// RecDummyCLR implements a nested top-level action: it backs the
	// enclosing transaction's undo chain over the NTA's records, making
	// them unconditionally durable with respect to that transaction.
	RecDummyCLR
)

// String renders the record type for diagnostics.
func (t RecType) String() string {
	switch t {
	case RecBegin:
		return "BEGIN"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecEnd:
		return "END"
	case RecUpdate:
		return "UPDATE"
	case RecCLR:
		return "CLR"
	case RecCheckpoint:
		return "CKPT"
	case RecDummyCLR:
		return "DUMMYCLR"
	default:
		return fmt.Sprintf("RecType(%d)", uint16(t))
	}
}

// Flags annotate records.
type Flags uint16

const (
	// FlagSystem marks records belonging to an atomic action (system
	// transaction) rather than a user database transaction.
	FlagSystem Flags = 1 << iota
)

// Kind identifies the operation an Update or CLR record describes; the
// recovery handler registry maps Kinds to redo/undo procedures. Kinds are
// allocated by the packages that own the pages (storage metadata, core
// tree, tsb tree, spatial tree).
type Kind uint16

// Record is one log record. StoreID and PageID locate the affected page
// for physiological updates; they are zero for purely transactional
// records.
type Record struct {
	LSN      LSN // assigned by Append
	Type     RecType
	Flags    Flags
	Kind     Kind
	TxnID    TxnID
	PrevLSN  LSN // previous record of the same transaction
	UndoNext LSN // CLR/DummyCLR: next record to undo for this transaction
	StoreID  uint32
	PageID   uint64
	Payload  []byte
}

// IsSystem reports whether the record belongs to an atomic action.
func (r *Record) IsSystem() bool { return r.Flags&FlagSystem != 0 }

const headerSize = 4 + 4 + 8 + 2 + 2 + 2 + 8 + 8 + 8 + 4 + 8 // len,crc,lsn,type,flags,kind,txn,prev,undonext,store,page

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// encodeInto writes the wire form of r into b, which must be exactly
// headerSize+len(r.Payload) bytes. The record's LSN is part of the frame
// and covered by the CRC: a decoder can therefore verify not only that
// the bytes are intact but that the record actually belongs at the
// position it was read from, which is what gives file replay its LSN
// continuity check (a recycled segment's stale-but-intact records carry
// old LSNs and are rejected).
func encodeInto(b []byte, r *Record) {
	total := len(b)
	binary.LittleEndian.PutUint32(b[0:], uint32(total))
	// CRC filled below over bytes [8:total].
	binary.LittleEndian.PutUint64(b[8:], uint64(r.LSN))
	binary.LittleEndian.PutUint16(b[16:], uint16(r.Type))
	binary.LittleEndian.PutUint16(b[18:], uint16(r.Flags))
	binary.LittleEndian.PutUint16(b[20:], uint16(r.Kind))
	binary.LittleEndian.PutUint64(b[22:], uint64(r.TxnID))
	binary.LittleEndian.PutUint64(b[30:], uint64(r.PrevLSN))
	binary.LittleEndian.PutUint64(b[38:], uint64(r.UndoNext))
	binary.LittleEndian.PutUint32(b[46:], r.StoreID)
	binary.LittleEndian.PutUint64(b[50:], r.PageID)
	copy(b[headerSize:], r.Payload)
	crc := crc32.Checksum(b[8:total], crcTable)
	binary.LittleEndian.PutUint32(b[4:], crc)
}

// ErrCorruptRecord reports a torn or corrupt log record (bad length, CRC
// mismatch, or a stored LSN that does not match the record's position).
// Replay treats the first corrupt record as the end of the log. It is the
// durability layer's classification sentinel: errors.Is(err,
// ErrCorruptRecord) matches every framing failure.
var ErrCorruptRecord = errors.New("wal: torn or corrupt record")

// ErrBadRecord is the historical name of ErrCorruptRecord.
var ErrBadRecord = ErrCorruptRecord

// ErrLogFailed is wrapped by every stable-sync error once the log device
// has failed (permanently, by a torn sync, or by exhausting transient
// retries). The failure is sticky: a record whose force returned an
// error wrapping ErrLogFailed can never later become stable, which is
// what lets the transaction layer roll back an unacknowledged commit
// and the engine degrade to read-only instead of panicking.
var ErrLogFailed = errors.New("wal: log device failed")

// FPSync is the failpoint probed on every physical stable-prefix sync
// (Force, ForceGroup rounds, ForceAll). A Transient fault is retried
// with backoff inside the sync; Permanent (or retries exhausted) latches
// the log damaged; Torn advances stability only to a seeded earlier
// record boundary before latching.
const FPSync = "wal.sync"

// FPSyncSlow is a latency-only failpoint probed at the start of every
// sync stage. Arm it with a fault.Spec carrying Delay (Kind None) to
// stall a sync without failing it: the stall holds the pipeline's sync
// stage open so tests can observe write/sync overlap deterministically.
const FPSyncSlow = "wal.sync.slow"

// FPWrite is the failpoint probed when the pipeline's write stage
// completes — after the stable-prefix delta reached the sink (or was
// fully published, for a memory-only log) but before any sync covers
// it. A crash-armed spec here models dying between a commit's pwrite
// and its fsync: the bytes are in the files' page cache, the committer
// was never acknowledged.
const FPWrite = "wal.write"

// maxSyncRetries bounds in-sync retries of an injected transient fault.
const maxSyncRetries = 4

// decodeShared parses one record starting at b[0]. It returns the record
// and its encoded length. The record's Payload aliases b instead of
// copying it, so callers must treat it as read-only for as long as b is
// shared; restart's planner and redo workers rely on this to read a log
// image without one allocation per record (images are immutable
// snapshots, so the alias can never observe a mutation).
func decodeShared(b []byte) (Record, int, error) {
	var r Record
	total, err := decodeSharedInto(b, &r)
	return r, total, err
}

// decodeSharedInto is decodeShared writing into a caller-provided record,
// so a scan can reuse one Record across the whole log instead of copying
// a fresh struct per record.
func decodeSharedInto(b []byte, r *Record) (int, error) {
	if len(b) < headerSize {
		return 0, ErrBadRecord
	}
	total := int(binary.LittleEndian.Uint32(b[0:]))
	if total < headerSize || total > len(b) {
		return 0, ErrBadRecord
	}
	crc := binary.LittleEndian.Uint32(b[4:])
	if crc32.Checksum(b[8:total], crcTable) != crc {
		return 0, ErrBadRecord
	}
	*r = Record{
		LSN:      LSN(binary.LittleEndian.Uint64(b[8:])),
		Type:     RecType(binary.LittleEndian.Uint16(b[16:])),
		Flags:    Flags(binary.LittleEndian.Uint16(b[18:])),
		Kind:     Kind(binary.LittleEndian.Uint16(b[20:])),
		TxnID:    TxnID(binary.LittleEndian.Uint64(b[22:])),
		PrevLSN:  LSN(binary.LittleEndian.Uint64(b[30:])),
		UndoNext: LSN(binary.LittleEndian.Uint64(b[38:])),
		StoreID:  binary.LittleEndian.Uint32(b[46:]),
		PageID:   binary.LittleEndian.Uint64(b[50:]),
	}
	if total > headerSize {
		r.Payload = b[headerSize:total]
	}
	return total, nil
}

// decode parses one record starting at b[0]. It returns the record and its
// encoded length. The payload is an independent copy.
func decode(b []byte) (Record, int, error) {
	r, total, err := decodeShared(b)
	if err == nil && len(r.Payload) > 0 {
		r.Payload = append([]byte(nil), r.Payload...)
	}
	return r, total, err
}

// Log buffer geometry. The log lives in fixed-size segments so that the
// buffer grows without ever re-copying earlier records (a single
// append-grown slice re-copies the whole log on every doubling) and so
// that concurrent appenders can copy into disjoint reserved ranges
// without any shared lock.
const (
	segShift = 16 // 64 KiB segments
	segSize  = 1 << segShift
	segMask  = segSize - 1

	// inflightSlots bounds the number of concurrently reserving
	// appenders; excess appenders spin briefly for a free slot.
	inflightSlots = 64

	// idleSlot marks an in-flight slot as unused.
	idleSlot = ^uint64(0)
)

// inflightSlot is one publication slot, padded to a cache line so
// concurrent appenders do not false-share.
type inflightSlot struct {
	v atomic.Uint64
	_ [56]byte
}

// Log is the log manager. It is safe for concurrent use.
//
// Appends are lock-free: an appender reserves LSN space with an atomic
// fetch-add on tail, copies the encoded record into its reserved range
// of the segmented buffer, and publishes completion by clearing its
// in-flight slot. A slot holds a lower bound on the owner's start offset
// from before the reservation is made, so the minimum over the active
// slots (capped at tail) is a watermark below which every byte is fully
// copied. Force only ever advances stability over that fully-published
// prefix, waiting out any holes left by still-copying appenders — group
// commit without blocking them.
type Log struct {
	tail    atomic.Uint64 // next free byte offset; offset 0 is a pad so LSN 0 is invalid
	appends atomic.Int64

	segs   atomic.Pointer[[][]byte] // grow-only directory of segSize segments
	growMu sync.Mutex               // serializes segment allocation only

	inflight [inflightSlots]inflightSlot
	slotHint atomic.Uint32 // rotates claim start points across appenders

	mu         sync.Mutex // watermark/anchor state below
	stableLSN  LSN        // bytes [ :stableLSN] survive a crash
	writtenLSN LSN        // bytes [ :writtenLSN] are in the sink, not necessarily synced
	ckptLSN    LSN        // master-record anchor: LSN of the last stable checkpoint
	flushes    int64      // number of sync rounds that advanced stableLSN
	start      LSN        // first readable LSN (> 1 after segment recycling)
	sink       StableSink // optional durable backing for the stable prefix

	// Flush pipeline. The stable-prefix advance is split into two stages
	// with at most one outstanding each: the write stage (wrMu) waits out
	// publication holes and hands the delta to the sink (pwrite), the
	// sync stage (syMu) makes everything written durable (fsync) and
	// advances stableLSN. Stages on different rounds overlap — the next
	// round's write runs while the previous round's sync is in flight —
	// but stableLSN only ever advances in sync order, so the stable
	// prefix remains exactly the synced prefix. scratch and iovecs are
	// write-stage scratch space, guarded by wrMu.
	wrMu    sync.Mutex
	syMu    sync.Mutex
	scratch []byte
	iovecs  [][]byte

	// Group-commit state (ForceGroup). gcMu is taken only on the commit
	// path and never while holding l.mu, wrMu, or syMu.
	gcMu       sync.Mutex
	gcCond     *sync.Cond
	gcLeader   bool  // serial mode: a leader is currently inside Force
	wLeader    bool  // pipelined mode: a committer is driving the write stage
	sLeader    bool  // pipelined mode: a committer is driving the sync stage
	gcMax      LSN   // highest LSN registered by any committer
	gcErr      error // sticky first round failure (the log is damaged)
	gcRounds   int64 // sync rounds (serial mode: leader rounds)
	wRounds    int64 // pipelined write rounds
	overlaps   int64 // write rounds begun while a sync was in flight
	gcRequests atomic.Int64
	syncNanos  atomic.Int64 // cumulative wall time inside device syncs
	pipelined  atomic.Bool  // overlap rounds (on by default); off = PR 8 serial rounds

	// Fault injection. inj is set once before concurrent use; damaged
	// latches sticky on the first failed sync.
	inj     *fault.Injector
	damaged atomic.Bool
}

// SetInjector attaches a fault injector whose wal.sync failpoint governs
// stable-prefix syncs. Must be called before the log is used
// concurrently.
func (l *Log) SetInjector(inj *fault.Injector) { l.inj = inj }

// StableSink receives the log's stable prefix as it advances, turning the
// in-memory stability model into real durability. Persist is called only
// from the log's single write stage (never concurrently with itself)
// with contiguous, gap-free byte ranges in LSN order; Commit is called
// only from the single sync stage and must make everything persisted so
// far survive a process kill (fsync, subject to the sink's sync policy).
// Persist and Commit DO overlap — that is the point of the flush
// pipeline — so a sink must tolerate a Persist arriving while a Commit
// is in flight. Either method failing latches the log damaged, exactly
// like a device failure: the force that observed it returns an error
// wrapping ErrLogFailed and the record is guaranteed never to be
// acknowledged as stable.
type StableSink interface {
	Persist(from LSN, b []byte) error
	Commit() error
}

// sinkVectored is the optional vectored-write surface of a StableSink:
// the write stage hands the stable-prefix delta as a list of contiguous
// byte ranges (the log's in-memory segments cut at the delta's bounds)
// that together form one gap-free range starting at from, letting the
// sink issue a single pwritev-style write instead of copying the delta
// into a contiguous scratch buffer first.
type sinkVectored interface {
	PersistV(from LSN, bufs [][]byte) error
}

// sinkRewinder is the optional truncation surface of a StableSink: drop
// every persisted-but-unsynced byte at or beyond `to`, so that a replay
// of the sink's files agrees with an in-memory stable point that a
// failed sync pinned at `to`. Called only on sync-failure paths, after
// which the log is latched damaged.
type sinkRewinder interface {
	Rewind(to LSN) error
}

// sinkRecycler is the optional recycling surface of a StableSink: drop
// segments wholly below horizon after durably noting the new horizon.
type sinkRecycler interface {
	Recycle(horizon LSN) error
}

// sinkAnchor is the optional master-record surface of a StableSink: note
// the checkpoint anchor durably (the master record of real systems).
type sinkAnchor interface {
	NoteCheckpoint(lsn LSN) error
}

// sinkPartial is the optional torn-write surface of a StableSink: write b
// at from without advancing the sink's persisted prefix, modeling a
// device that stopped mid-record. Best effort; used only by torn-sync
// fault injection so a later file replay sees a genuinely partial record.
type sinkPartial interface {
	PersistPartial(from LSN, b []byte) error
}

// SetSink attaches a durable sink for the stable prefix. Must be called
// before the log is used concurrently, and the sink must already be
// positioned at the log's current stable LSN (a fresh sink for a fresh
// log, or a replayed sink for a log built with NewFromImage on that
// sink's reader).
func (l *Log) SetSink(s StableSink) { l.sink = s }

// Damaged reports whether the log device has failed. Once true, every
// force of a not-yet-stable record fails; already-stable records stay
// stable and readable.
func (l *Log) Damaged() bool { return l.damaged.Load() }

// New returns an empty log with the flush pipeline enabled.
func New() *Log {
	l := &Log{stableLSN: 1, writtenLSN: 1, start: 1}
	l.gcCond = sync.NewCond(&l.gcMu)
	l.tail.Store(1)
	l.pipelined.Store(true)
	segs := [][]byte{make([]byte, segSize)}
	l.segs.Store(&segs)
	for i := range l.inflight {
		l.inflight[i].v.Store(idleSlot)
	}
	return l
}

// SetPipelined toggles flush pipelining in ForceGroup. On (the default),
// group-commit rounds overlap: the next round's write stage runs while
// the previous round's sync is in flight. Off restores strictly serial
// rounds (one leader does write+sync end to end), the pre-pipeline
// behavior benchmarks compare against. Must not be toggled while forces
// are in flight.
func (l *Log) SetPipelined(on bool) { l.pipelined.Store(on) }

// NewFromImage continues a log from a crash image: the image's contents
// become the stable prefix and appends resume after it, preserving LSN
// continuity across restart exactly as a real single log would.
func NewFromImage(r *Reader) *Log {
	l := New()
	start := uint64(r.effStart())
	if end := uint64(len(r.buf)); end > start {
		segs := l.ensure(end)
		copyIn(segs, start, r.buf[start:])
		l.tail.Store(end)
		l.stableLSN = LSN(end)
		l.writtenLSN = LSN(end)
	}
	l.start = r.effStart()
	l.ckptLSN = r.ckptLSN
	return l
}

// ensure returns a segment directory covering bytes [0:end), allocating
// segments as needed.
func (l *Log) ensure(end uint64) [][]byte {
	need := int((end + segSize - 1) >> segShift)
	segs := *l.segs.Load()
	if len(segs) >= need {
		return segs
	}
	l.growMu.Lock()
	segs = *l.segs.Load()
	if len(segs) < need {
		ns := segs
		if cap(ns) < need {
			// Grow the directory geometrically so the pointer array is
			// not re-copied on every new segment.
			newCap := 2 * cap(ns)
			if newCap < need {
				newCap = need
			}
			if newCap < 64 {
				newCap = 64
			}
			ns = make([][]byte, len(segs), newCap)
			copy(ns, segs)
		}
		// Appending within capacity only writes indices at or beyond
		// every published header's length, so concurrent readers of the
		// old header never observe them.
		for len(ns) < need {
			ns = append(ns, make([]byte, segSize))
		}
		l.segs.Store(&ns)
		segs = ns
	}
	l.growMu.Unlock()
	return segs
}

// copyIn copies b into the segmented buffer at off; the range must lie
// within already-allocated segments.
func copyIn(segs [][]byte, off uint64, b []byte) {
	for len(b) > 0 {
		n := copy(segs[off>>segShift][off&segMask:], b)
		b = b[n:]
		off += uint64(n)
	}
}

// copyOut copies len(dst) bytes starting at off out of the segmented
// buffer.
func copyOut(segs [][]byte, dst []byte, off uint64) {
	for len(dst) > 0 {
		n := copy(dst, segs[off>>segShift][off&segMask:])
		dst = dst[n:]
		off += uint64(n)
	}
}

// claimSlot reserves one in-flight publication slot, pre-charged with a
// lower bound on the caller's eventual start offset. All inflightSlots
// slots busy means more than inflightSlots appenders are mid-copy; each
// copy is short (an in-memory memcpy), so slots normally free up within
// a few probes. Under heavier oversubscription the claimant yields for
// the first laps, then backs off to a real sleep so that spinning
// claimants cannot starve the very copiers they are waiting on.
func (l *Log) claimSlot() *atomic.Uint64 {
	i := l.slotHint.Add(1)
	for attempt := 0; ; attempt++ {
		s := &l.inflight[(i+uint32(attempt))%inflightSlots].v
		// The bound must be loaded before the CAS makes the slot visible
		// and before the reservation, so it never exceeds the start.
		bound := l.tail.Load()
		if s.CompareAndSwap(idleSlot, bound) {
			return s
		}
		if attempt%inflightSlots == inflightSlots-1 {
			if lap := attempt / inflightSlots; lap < 4 {
				runtime.Gosched()
			} else {
				time.Sleep(time.Microsecond << min(lap-3, 7))
			}
		}
	}
}

// publishedPrefix returns an offset below which every reserved byte has
// been fully copied, at most limit.
func (l *Log) publishedPrefix(limit uint64) uint64 {
	min := limit
	for i := range l.inflight {
		if v := l.inflight[i].v.Load(); v < min {
			min = v
		}
	}
	return min
}

// NoteCheckpoint records lsn as the most recent checkpoint anchor (the
// "master record" of real systems). Callers force the log through lsn
// first; an unforced anchor would not survive a crash, so CrashImage drops
// anchors beyond the truncation point. With a durable sink attached the
// anchor is also written to the sink's master record.
func (l *Log) NoteCheckpoint(lsn LSN) {
	l.mu.Lock()
	if lsn <= l.stableLSN || lsn < LSN(l.tail.Load()) {
		l.ckptLSN = lsn
		if a, ok := l.sink.(sinkAnchor); ok {
			// A failed master write only loses the anchor, never log
			// records: replay falls back to the previous anchor, which is
			// always sufficient (just slower).
			_ = a.NoteCheckpoint(lsn)
		}
	}
	l.mu.Unlock()
}

// Recycle tells the durable sink that no record below horizon will ever
// be read again (redo, undo, and analysis all start at or beyond it), so
// segment files wholly below it can be retired and recycled. In-memory
// state is untouched — recycling is a property of the files, not of the
// buffered log. No-op without a recycling sink. The horizon is clamped to
// the stable prefix: an unforced horizon could otherwise retire bytes
// replay still needs.
func (l *Log) Recycle(horizon LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec, ok := l.sink.(sinkRecycler)
	if !ok {
		return nil
	}
	if horizon > l.stableLSN {
		horizon = l.stableLSN
	}
	return rec.Recycle(horizon)
}

// CheckpointLSN returns the current checkpoint anchor, or NilLSN.
func (l *Log) CheckpointLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ckptLSN
}

// Append adds r to the log buffer, assigns and returns its LSN. The record
// is not stable until a Force at or beyond it. Appenders never block each
// other: LSN space is reserved with an atomic add and the record bytes are
// copied into the reservation concurrently.
func (l *Log) Append(r *Record) LSN {
	total := uint64(headerSize + len(r.Payload))
	slot := l.claimSlot()
	start := l.tail.Add(total) - total
	// Tighten the slot's bound from pre-reservation tail to the exact
	// start, so a concurrent Force group-committing records before ours
	// does not wait on our copy.
	slot.Store(start)
	r.LSN = LSN(start)
	end := start + total
	segs := l.ensure(end)
	if start>>segShift == (end-1)>>segShift {
		// Common case: the record fits one segment; encode in place.
		so := start & segMask
		encodeInto(segs[start>>segShift][so:so+total], r)
	} else {
		b := make([]byte, total)
		encodeInto(b, r)
		copyIn(segs, start, b)
	}
	l.appends.Add(1)
	// Publish: after this store the bytes are covered by publishedPrefix.
	slot.Store(idleSlot)
	return LSN(start)
}

// AppendGroup adds recs to the log as one reservation: a single in-flight
// slot claim and a single fetch-add cover the whole group, so a batch of
// per-key update records pays one publication handshake instead of one
// per record. Records keep their individual framing — each gets its own
// LSN, CRC, and header — so readers, recovery, and per-record undo see
// them exactly as if they had been appended one by one. The PrevLSN of
// recs[0] is taken as the caller set it; every later record's PrevLSN is
// overwritten to chain to its predecessor in the group, preserving the
// owning transaction's undo chain. Returns the LSN of the last record
// (NilLSN for an empty group).
func (l *Log) AppendGroup(recs []*Record) LSN {
	if len(recs) == 0 {
		return NilLSN
	}
	var total uint64
	for _, r := range recs {
		total += uint64(headerSize + len(r.Payload))
	}
	slot := l.claimSlot()
	start := l.tail.Add(total) - total
	slot.Store(start)
	end := start + total
	segs := l.ensure(end)
	off := start
	for i, r := range recs {
		r.LSN = LSN(off)
		if i > 0 {
			r.PrevLSN = recs[i-1].LSN
		}
		sz := uint64(headerSize + len(r.Payload))
		if off>>segShift == (off+sz-1)>>segShift {
			so := off & segMask
			encodeInto(segs[off>>segShift][so:so+sz], r)
		} else {
			b := make([]byte, sz)
			encodeInto(b, r)
			copyIn(segs, off, b)
		}
		off += sz
	}
	l.appends.Add(int64(len(recs)))
	slot.Store(idleSlot)
	return recs[len(recs)-1].LSN
}

// Force makes every record with LSN <= lsn stable. Forcing NilLSN is a
// no-op; forcing beyond the end flushes everything. Force waits for
// concurrent appenders that hold earlier LSN reservations to finish
// copying (hole filling), then advances stability over the whole
// fully-published prefix — group commit. It drives both pipeline stages
// back to back: write (publication wait + sink persist), then sync
// (device fsync + stable-point advance).
//
// A nil return guarantees the record is stable. A non-nil return
// guarantees it never will be (the log is latched damaged), so callers
// may treat the record as lost and roll back.
func (l *Log) Force(lsn LSN) error {
	if lsn == NilLSN {
		return nil
	}
	// A record is stable iff it starts below stableLSN.
	if l.stableBeyond(lsn) {
		return nil
	}
	if err := l.stageWrite(uint64(lsn) + 1); err != nil {
		return err
	}
	return l.stageSync()
}

// stageWrite is the pipeline's first stage: wait until the published
// prefix covers target (bounded by the current tail), hand the newly
// published delta to the sink in one vectored write, and advance
// writtenLSN. At most one write is outstanding (wrMu); it may overlap a
// sync of earlier bytes. A sink write failing latches the log damaged —
// if the device cannot even take the bytes, no later sync could save
// them.
func (l *Log) stageWrite(target uint64) error {
	l.wrMu.Lock()
	defer l.wrMu.Unlock()
	limit := l.tail.Load()
	if target > limit {
		target = limit
	}
	l.mu.Lock()
	written := uint64(l.writtenLSN)
	l.mu.Unlock()
	if target <= written {
		return nil
	}
	if l.damaged.Load() {
		return fmt.Errorf("wal: write to %d: %w", target, ErrLogFailed)
	}
	if l.inj.Crashed() {
		// The crash latch freezes simulated stable state: no further
		// bytes reach the sink.
		return fmt.Errorf("wal: write to %d after crash: %w", target, ErrLogFailed)
	}
	pub := l.waitPublished(limit, target)
	if pub <= written {
		return nil
	}
	if l.sink != nil {
		if err := l.persistRange(written, pub); err != nil {
			l.damaged.Store(true)
			return fmt.Errorf("wal: persist [%d,%d): %w: %w", written, pub, ErrLogFailed, err)
		}
	}
	l.mu.Lock()
	if LSN(pub) > l.writtenLSN {
		l.writtenLSN = LSN(pub)
	}
	l.mu.Unlock()
	if err := l.inj.Check(FPWrite); err != nil {
		l.damaged.Store(true)
		return fmt.Errorf("wal: write fault at %d: %w: %w", pub, ErrLogFailed, err)
	}
	return nil
}

// persistRange hands log bytes [from, to) to the sink: as in-place
// segment slices through the vectored surface when the sink has one
// (zero copies), through the contiguous scratch buffer otherwise.
// Caller holds wrMu.
func (l *Log) persistRange(from, to uint64) error {
	segs := *l.segs.Load()
	if v, ok := l.sink.(sinkVectored); ok {
		bufs := l.iovecs[:0]
		for off := from; off < to; {
			seg := segs[off>>segShift]
			lo := off & segMask
			n := uint64(segSize) - lo
			if off+n > to {
				n = to - off
			}
			bufs = append(bufs, seg[lo:lo+n])
			off += n
		}
		l.iovecs = bufs
		err := v.PersistV(LSN(from), bufs)
		for i := range bufs {
			bufs[i] = nil
		}
		return err
	}
	n := to - from
	if uint64(cap(l.scratch)) < n {
		l.scratch = make([]byte, n)
	}
	buf := l.scratch[:n]
	copyOut(segs, buf, from)
	return l.sink.Persist(LSN(from), buf)
}

// stageSync is the pipeline's second stage: make every written byte
// durable and advance the stable point over it. At most one sync is
// outstanding (syMu); the next round's write stage may already be
// running. The fault injector is consulted the way a log manager
// consults its device: transient errors are retried with backoff, a
// permanent error (or exhausted retries) latches the device failed, a
// torn sync rewinds the sink to a seeded record boundary and advances
// stability only that far, and a tripped crash latch freezes the stable
// point exactly where it is.
func (l *Log) stageSync() error {
	l.syMu.Lock()
	defer l.syMu.Unlock()
	l.mu.Lock()
	stable := uint64(l.stableLSN)
	target := uint64(l.writtenLSN)
	l.mu.Unlock()
	if target <= stable {
		return nil
	}
	if l.damaged.Load() {
		return fmt.Errorf("wal: sync to %d: %w", target-1, ErrLogFailed)
	}
	inj := l.inj
	_ = inj.Check(FPSyncSlow) // latency-only injection
	for attempt := 0; ; attempt++ {
		if inj.Crashed() {
			return fmt.Errorf("wal: sync to %d after crash: %w", target-1, ErrLogFailed)
		}
		err := inj.Check(FPSync)
		if err == nil {
			if inj.Crashed() {
				// A crash-only trip fired on this very sync: the machine
				// died before the device acknowledged.
				return fmt.Errorf("wal: sync to %d after crash: %w", target-1, ErrLogFailed)
			}
			if l.sink != nil {
				t0 := time.Now()
				if serr := l.sink.Commit(); serr != nil {
					l.damaged.Store(true)
					return fmt.Errorf("wal: sync to %d: %w: %w", target-1, ErrLogFailed, serr)
				}
				l.syncNanos.Add(time.Since(t0).Nanoseconds())
			}
			l.mu.Lock()
			if LSN(target) > l.stableLSN {
				l.stableLSN = LSN(target)
				l.flushes++
			}
			l.mu.Unlock()
			return nil
		}
		if fault.IsTorn(err) {
			// The device persisted part of the sync and then failed:
			// advance stability only to a seeded earlier record boundary
			// and rewind the sink to match (plus a genuinely partial
			// record, so file replay truncates exactly where the
			// in-memory stable point stopped).
			fe := fault.AsError(err)
			b := l.tearBoundary(stable, target, fe.Frac)
			l.tornSink(b, target, fe.Frac)
			l.mu.Lock()
			if LSN(b) > l.stableLSN {
				l.stableLSN = LSN(b)
				l.flushes++
			}
			if l.writtenLSN > l.stableLSN {
				l.writtenLSN = l.stableLSN
			}
			l.mu.Unlock()
			l.damaged.Store(true)
			return fmt.Errorf("wal: sync to %d tore at %d: %w: %w", target-1, b, ErrLogFailed, err)
		}
		if fault.IsTransient(err) && attempt < maxSyncRetries {
			time.Sleep(time.Microsecond << attempt)
			continue
		}
		// Permanent fault, or transient retries exhausted: latch the
		// device failed, so this record can never quietly become stable
		// after its committer was told otherwise. Written-but-unsynced
		// bytes are rewound out of the sink so a later file replay agrees
		// with the frozen stable point.
		l.damaged.Store(true)
		l.rewindSink(stable)
		return fmt.Errorf("wal: sync to %d: %w: %w", target-1, ErrLogFailed, err)
	}
}

// rewindSink best-effort truncates the sink back to `to`, dropping
// persisted-but-unsynced bytes after a failed sync. The log is latched
// damaged by the caller.
func (l *Log) rewindSink(to uint64) {
	if l.sink == nil {
		return
	}
	if rw, ok := l.sink.(sinkRewinder); ok {
		_ = rw.Rewind(LSN(to))
	}
}

// tearBoundary picks the record boundary a torn sync stopped at: one of
// the boundaries strictly between from (the current stable point) and
// target, selected by the seeded draw frac. Returns from when no record
// completes inside the range.
func (l *Log) tearBoundary(from, target uint64, frac float64) uint64 {
	segs := *l.segs.Load()
	var bounds []uint64
	pos := from
	for {
		if pos+4 > target {
			break
		}
		var lenb [4]byte
		copyOut(segs, lenb[:], pos)
		total := uint64(binary.LittleEndian.Uint32(lenb[:]))
		if total < headerSize || pos+total > target {
			break
		}
		pos += total
		if pos >= target {
			break
		}
		bounds = append(bounds, pos)
	}
	if len(bounds) == 0 {
		return from
	}
	idx := int(frac * float64(len(bounds)))
	if idx >= len(bounds) {
		idx = len(bounds) - 1
	}
	return bounds[idx]
}

// ForceGroup makes every record with LSN <= lsn stable, coalescing
// concurrent callers into as few physical forces as possible — group
// commit. Each caller registers its LSN; waiters elect per-stage
// leaders and the rest wait for a broadcast. A caller whose LSN
// registered too late for the current round simply leads (or joins) the
// next one, so N concurrent commits pay far fewer than N forces.
// Durability on return is identical to Force(lsn).
//
// In pipelined mode (the default) the two flush stages overlap across
// rounds: while one leader fsyncs round k, another leader is already
// waiting out publication and handing round k+1's bytes to the sink, so
// the unamortized stall per round is max(write, sync) rather than their
// sum. At most one write and one sync are outstanding at any instant,
// and the stable prefix still advances strictly in order (the sync
// stage only ever covers fully written bytes).
//
// A waiter is acknowledged (nil return) only after a successful sync
// covers its record — if a stage fails, every waiter whose record did
// not reach stability gets the error, never a silent ack. A torn round
// may leave some waiters' records inside the surviving prefix; those
// are genuinely stable and are acknowledged.
func (l *Log) ForceGroup(lsn LSN) error {
	if lsn == NilLSN {
		return nil
	}
	l.gcRequests.Add(1)
	if !l.pipelined.Load() {
		return l.forceGroupSerial(lsn)
	}
	l.gcMu.Lock()
	if lsn > l.gcMax {
		l.gcMax = lsn
	}
	for {
		if l.stableBeyond(lsn) {
			l.gcMu.Unlock()
			return nil
		}
		if l.gcErr != nil {
			// A previous round failed; the log is latched damaged, so
			// this record can never become stable.
			err := l.gcErr
			l.gcMu.Unlock()
			return err
		}
		if !l.writtenBeyond(lsn) {
			// The record is not yet in the sink: this round needs a
			// write-stage leader.
			if l.wLeader {
				l.gcCond.Wait()
				continue
			}
			l.wLeader = true
			if l.sLeader {
				l.overlaps++
			}
			l.gcMu.Unlock()
			// Yield once before reading the round's target so committers
			// racing on the same CPU can register first — the moral
			// equivalent of the device latency a real group commit
			// batches under.
			runtime.Gosched()
			l.gcMu.Lock()
			target := l.gcMax
			l.gcMu.Unlock()

			err := l.stageWrite(uint64(target) + 1)

			l.gcMu.Lock()
			l.wLeader = false
			l.wRounds++
			if err != nil && l.gcErr == nil {
				l.gcErr = err
			}
			l.gcCond.Broadcast()
			continue
		}
		// Written but not yet stable: this round needs a sync-stage
		// leader.
		if l.sLeader {
			l.gcCond.Wait()
			continue
		}
		l.sLeader = true
		// The double-buffer swap: let any in-flight write round land
		// before capturing the sync target, so this fsync also covers the
		// bytes that were being written while the previous fsync ran.
		// Without this, committers acked by round k re-append just after
		// round k+1 captures its target and split into two out-of-phase
		// cohorts, doubling fsyncs per commit. The write stage itself ran
		// overlapped with the previous sync, so the round still costs
		// max(write, sync), not write+sync.
		for l.wLeader {
			l.gcCond.Wait()
		}
		l.gcMu.Unlock()

		err := l.stageSync()

		l.gcMu.Lock()
		l.sLeader = false
		l.gcRounds++
		if err != nil && l.gcErr == nil {
			l.gcErr = err
		}
		l.gcCond.Broadcast()
	}
}

// forceGroupSerial is the pre-pipeline group commit: one leader drives
// both stages back to back while followers wait — each round pays
// write+sync with no overlap. Kept selectable (SetPipelined(false)) as
// the baseline for the pipeline experiments.
func (l *Log) forceGroupSerial(lsn LSN) error {
	l.gcMu.Lock()
	if lsn > l.gcMax {
		l.gcMax = lsn
	}
	for {
		if l.stableBeyond(lsn) {
			l.gcMu.Unlock()
			return nil
		}
		if l.gcErr != nil {
			err := l.gcErr
			l.gcMu.Unlock()
			return err
		}
		if !l.wLeader {
			break
		}
		l.gcCond.Wait()
	}
	l.wLeader = true
	l.gcMu.Unlock()
	runtime.Gosched()
	l.gcMu.Lock()
	target := l.gcMax
	l.gcMu.Unlock()

	err := l.Force(target)

	l.gcMu.Lock()
	l.wLeader = false
	l.gcRounds++
	l.wRounds++
	if err != nil {
		// Force failures are sticky (the log is damaged), so parking the
		// error is final: current waiters and future committers alike
		// must not be acknowledged.
		l.gcErr = err
	}
	l.gcCond.Broadcast()
	l.gcMu.Unlock()
	if err != nil && l.stableBeyond(lsn) {
		// The round tore but this record survived inside the prefix.
		return nil
	}
	return err
}

// stableBeyond reports whether the record at lsn is already stable.
func (l *Log) stableBeyond(lsn LSN) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return lsn < l.stableLSN
}

// writtenBeyond reports whether the record at lsn is already in the
// sink (written, not necessarily synced).
func (l *Log) writtenBeyond(lsn LSN) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return lsn < l.writtenLSN
}

// GroupCommitStats returns how many ForceGroup calls were made and how
// many leader force rounds actually ran; their ratio is the commit
// coalescing factor.
func (l *Log) GroupCommitStats() (requests, rounds int64) {
	requests = l.gcRequests.Load()
	l.gcMu.Lock()
	rounds = l.gcRounds
	l.gcMu.Unlock()
	return requests, rounds
}

// ForceAll makes the entire appended log stable.
func (l *Log) ForceAll() error {
	if err := l.stageWrite(l.tail.Load()); err != nil {
		return err
	}
	return l.stageSync()
}

// tornSink mirrors a torn sync into the sink: the sink is rewound to
// the tear boundary b (the prefix up to b survives) and re-committed,
// then a seeded fraction of the record starting at b is written
// partially — strictly less than the whole record, so file replay
// truncates exactly at b the way the in-memory stable point does. Best
// effort: the device is about to be latched damaged either way. Caller
// holds syMu.
func (l *Log) tornSink(b, pub uint64, frac float64) {
	if l.sink == nil {
		return
	}
	l.rewindSink(b)
	_ = l.sink.Commit()
	sp, ok := l.sink.(sinkPartial)
	if !ok || b+4 > pub {
		return
	}
	segs := *l.segs.Load()
	var lenb [4]byte
	copyOut(segs, lenb[:], b)
	total := uint64(binary.LittleEndian.Uint32(lenb[:]))
	if total < headerSize || b+total > pub {
		return
	}
	// At most total-1 bytes: a complete record here would replay as
	// stable even though its committer was told it failed (a ghost).
	pl := uint64(frac * float64(total))
	if pl >= total {
		pl = total - 1
	}
	if pl == 0 {
		return
	}
	part := make([]byte, pl)
	copyOut(segs, part, b)
	_ = sp.PersistPartial(LSN(b), part)
}

// PipelineStats exposes the flush pipeline's round accounting.
type PipelineStats struct {
	WriteRounds int64 // completed write-stage rounds
	SyncRounds  int64 // completed sync-stage rounds
	Overlaps    int64 // write rounds started while a sync was in flight
	SyncNanos   int64 // cumulative wall time inside sink fsyncs
}

// PipelineStatsSnapshot returns the current pipeline counters.
func (l *Log) PipelineStatsSnapshot() PipelineStats {
	l.gcMu.Lock()
	wr, sr, ov := l.wRounds, l.gcRounds, l.overlaps
	l.gcMu.Unlock()
	return PipelineStats{
		WriteRounds: wr,
		SyncRounds:  sr,
		Overlaps:    ov,
		SyncNanos:   l.syncNanos.Load(),
	}
}

// waitPublished spins until the published prefix reaches target and
// returns it.
func (l *Log) waitPublished(limit, target uint64) uint64 {
	for {
		pub := l.publishedPrefix(limit)
		if pub >= target {
			return pub
		}
		runtime.Gosched()
	}
}

// StableLSN returns the first LSN that is NOT stable; records starting at
// or beyond it are lost in a crash.
func (l *Log) StableLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stableLSN
}

// EndLSN returns the LSN one past the last appended record.
func (l *Log) EndLSN() LSN {
	return LSN(l.tail.Load())
}

// Stats returns the number of appends and physical flushes so far, for the
// relative-durability experiment (T12).
func (l *Log) Stats() (appends, flushes int64) {
	appends = l.appends.Load()
	l.mu.Lock()
	flushes = l.flushes
	l.mu.Unlock()
	return appends, flushes
}

// Read returns the record starting at lsn, reading from the full buffered
// log (normal processing, e.g. rollback, sees unforced records too). The
// caller must have learned lsn from a completed Append.
func (l *Log) Read(lsn LSN) (Record, error) {
	end := l.tail.Load()
	if lsn == NilLSN || uint64(lsn) >= end {
		return Record{}, fmt.Errorf("wal: read at invalid LSN %d", lsn)
	}
	b, err := l.copyRecord(uint64(lsn), end)
	if err != nil {
		return Record{}, err
	}
	r, _, err := decode(b)
	if err != nil {
		return Record{}, err
	}
	if r.LSN != lsn {
		return Record{}, fmt.Errorf("wal: record at %d carries LSN %d: %w", lsn, r.LSN, ErrCorruptRecord)
	}
	return r, nil
}

// copyRecord copies the encoded record starting at off into a fresh
// contiguous buffer; end bounds the readable offset space.
func (l *Log) copyRecord(off, end uint64) ([]byte, error) {
	segs := *l.segs.Load()
	if off+4 > end {
		return nil, ErrBadRecord
	}
	var lenb [4]byte
	copyOut(segs, lenb[:], off)
	total := uint64(binary.LittleEndian.Uint32(lenb[:]))
	if total < headerSize || off+total > end {
		return nil, ErrBadRecord
	}
	b := make([]byte, total)
	copyOut(segs, b, off)
	return b, nil
}

// contiguous returns a fresh contiguous copy of bytes [0:end).
func (l *Log) contiguous(end uint64) []byte {
	img := make([]byte, end)
	segs := *l.segs.Load()
	if end > 1 {
		copyOut(segs, img[1:], 1)
	}
	return img
}

// CrashImage returns the stable prefix of the log as a Reader, simulating
// loss of the volatile tail. If truncateAt is non-nil and lies at a record
// boundary before the stable point, the image is truncated there instead,
// which lets the crash matrix test every prefix of a run.
func (l *Log) CrashImage(truncateAt *LSN) *Reader {
	l.mu.Lock()
	defer l.mu.Unlock()
	end := l.stableLSN
	if truncateAt != nil && *truncateAt < end {
		end = *truncateAt
	}
	ckpt := l.ckptLSN
	if ckpt >= end {
		ckpt = NilLSN
	}
	return &Reader{buf: l.contiguous(uint64(end)), ckptLSN: ckpt, start: l.start}
}

// FullImage returns a Reader over the fully-published buffered log, for
// restart analysis and tests that enumerate record boundaries.
func (l *Log) FullImage() *Reader {
	l.mu.Lock()
	defer l.mu.Unlock()
	end := l.publishedPrefix(l.tail.Load())
	return &Reader{buf: l.contiguous(end), ckptLSN: l.ckptLSN, start: l.start}
}

// Reader iterates a (possibly truncated) log image during restart. buf is
// indexed by absolute LSN; bytes below start are unreadable (zero after
// segment recycling dropped them).
type Reader struct {
	buf     []byte
	ckptLSN LSN
	start   LSN // first readable record position; 0 means 1
}

// CheckpointLSN returns the image's checkpoint anchor, or NilLSN if no
// checkpoint survived.
func (r *Reader) CheckpointLSN() LSN { return r.ckptLSN }

// StartLSN returns the first readable record position of the image. It is
// 1 for a never-recycled log and the recycle horizon afterwards.
func (r *Reader) StartLSN() LSN { return r.effStart() }

func (r *Reader) effStart() LSN {
	if r.start <= 1 {
		return 1
	}
	return r.start
}

// Scan calls fn for each record from lsn (NilLSN means the start of the
// readable image) to the end of the image, stopping early if fn returns
// false. A torn or corrupt record — including one whose stored LSN does
// not match its position — terminates the scan silently, as restart
// would.
func (r *Reader) Scan(lsn LSN, fn func(Record) bool) {
	pos := int(lsn)
	if pos < int(r.effStart()) {
		pos = int(r.effStart())
	}
	for pos < len(r.buf) {
		rec, n, err := decode(r.buf[pos:])
		if err != nil || rec.LSN != LSN(pos) {
			return
		}
		if !fn(rec) {
			return
		}
		pos += n
	}
}

// ScanShared is Scan without the per-record payload copy: records are
// passed by pointer and their payloads alias the image buffer, so a
// full-image pass costs no allocations. fn must treat the payload as
// read-only and must not retain the record past the callback without
// copying it. Restart's fused analysis+planning scan runs through this.
func (r *Reader) ScanShared(lsn LSN, fn func(*Record) bool) {
	pos := int(lsn)
	if pos < int(r.effStart()) {
		pos = int(r.effStart())
	}
	var rec Record
	for pos < len(r.buf) {
		n, err := decodeSharedInto(r.buf[pos:], &rec)
		if err != nil || rec.LSN != LSN(pos) {
			return
		}
		if !fn(&rec) {
			return
		}
		pos += n
	}
}

// RecordAt returns the record starting at lsn with its payload aliasing
// the image buffer (read-only) — the record-offset read surface restart's
// redo workers replay their per-page plans through without re-scanning or
// copying.
func (r *Reader) RecordAt(lsn LSN) (Record, error) {
	var rec Record
	if err := r.RecordAtInto(lsn, &rec); err != nil {
		return Record{}, err
	}
	return rec, nil
}

// RecordAtInto is RecordAt decoding into a caller-provided record, so a
// redo worker can materialize a page's whole batch without a struct copy
// per record.
func (r *Reader) RecordAtInto(lsn LSN, rec *Record) error {
	if lsn < r.effStart() || int(lsn) >= len(r.buf) {
		return fmt.Errorf("wal: image read at invalid LSN %d", lsn)
	}
	if _, err := decodeSharedInto(r.buf[lsn:], rec); err != nil {
		return err
	}
	if rec.LSN != lsn {
		return fmt.Errorf("wal: record at %d carries LSN %d: %w", lsn, rec.LSN, ErrCorruptRecord)
	}
	return nil
}

// Read returns the record at lsn within the image.
func (r *Reader) Read(lsn LSN) (Record, error) {
	if lsn < r.effStart() || int(lsn) >= len(r.buf) {
		return Record{}, fmt.Errorf("wal: image read at invalid LSN %d", lsn)
	}
	rec, _, err := decode(r.buf[lsn:])
	if err != nil {
		return Record{}, err
	}
	if rec.LSN != lsn {
		return Record{}, fmt.Errorf("wal: record at %d carries LSN %d: %w", lsn, rec.LSN, ErrCorruptRecord)
	}
	return rec, nil
}

// EndLSN returns one past the last byte of the image.
func (r *Reader) EndLSN() LSN { return LSN(len(r.buf)) }

// Boundaries returns the LSN of every record boundary in the image,
// including the final end-of-log position. The crash matrix uses these as
// truncation points.
func (r *Reader) Boundaries() []LSN {
	var out []LSN
	pos := int(r.effStart())
	for pos < len(r.buf) {
		out = append(out, LSN(pos))
		rec, n, err := decode(r.buf[pos:])
		if err != nil || rec.LSN != LSN(pos) {
			break
		}
		pos += n
	}
	out = append(out, LSN(pos))
	return out
}
