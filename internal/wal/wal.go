// Package wal implements the write-ahead log the paper's recovery
// assumptions require (§4.3): every update is logged before the page it
// changed can reach the stable database, and atomic actions are only
// "relatively" durable — their commit records need not force the log,
// because the first dependent transaction commit forces it for them.
//
// The log is modeled as an append-only byte sequence. An LSN is the byte
// offset at which a record starts, so LSNs are monotone and recovery can
// scan from any record boundary. The tail of the sequence beyond the last
// Force is volatile: a simulated crash truncates it, exactly as a real
// system loses its unforced log buffer.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
)

// LSN is a log sequence number: the byte offset of a record's start in the
// log. NilLSN (0) means "no record"; the log begins at offset 1 so that 0
// is never a valid record position.
type LSN uint64

// NilLSN is the null LSN.
const NilLSN LSN = 0

// TxnID identifies a database transaction or an atomic action (which is a
// system transaction, one of the identification options of §4.3.2).
type TxnID uint64

// NilTxn is the null transaction ID.
const NilTxn TxnID = 0

// RecType discriminates log record types.
type RecType uint16

// Log record types. Update and CLR carry a Kind that the handler registry
// in package recovery dispatches on; the WAL itself never interprets
// payloads.
const (
	RecInvalid RecType = iota
	// RecBegin marks the start of a transaction or atomic action.
	RecBegin
	// RecCommit marks a commit. For user transactions commit forces the
	// log; atomic-action commits rely on relative durability and do not.
	RecCommit
	// RecAbort marks the decision to roll back.
	RecAbort
	// RecEnd marks the completion of commit or rollback processing.
	RecEnd
	// RecUpdate is a physiological page update with redo and undo parts.
	RecUpdate
	// RecCLR is a compensation log record written during undo; it is
	// redo-only and carries UndoNext, the next record of the transaction
	// to undo.
	RecCLR
	// RecCheckpoint carries the fuzzy-checkpoint snapshot (transaction
	// table and dirty page table) encoded by package recovery.
	RecCheckpoint
	// RecDummyCLR implements a nested top-level action: it backs the
	// enclosing transaction's undo chain over the NTA's records, making
	// them unconditionally durable with respect to that transaction.
	RecDummyCLR
)

// String renders the record type for diagnostics.
func (t RecType) String() string {
	switch t {
	case RecBegin:
		return "BEGIN"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecEnd:
		return "END"
	case RecUpdate:
		return "UPDATE"
	case RecCLR:
		return "CLR"
	case RecCheckpoint:
		return "CKPT"
	case RecDummyCLR:
		return "DUMMYCLR"
	default:
		return fmt.Sprintf("RecType(%d)", uint16(t))
	}
}

// Flags annotate records.
type Flags uint16

const (
	// FlagSystem marks records belonging to an atomic action (system
	// transaction) rather than a user database transaction.
	FlagSystem Flags = 1 << iota
)

// Kind identifies the operation an Update or CLR record describes; the
// recovery handler registry maps Kinds to redo/undo procedures. Kinds are
// allocated by the packages that own the pages (storage metadata, core
// tree, tsb tree, spatial tree).
type Kind uint16

// Record is one log record. StoreID and PageID locate the affected page
// for physiological updates; they are zero for purely transactional
// records.
type Record struct {
	LSN      LSN // assigned by Append
	Type     RecType
	Flags    Flags
	Kind     Kind
	TxnID    TxnID
	PrevLSN  LSN // previous record of the same transaction
	UndoNext LSN // CLR/DummyCLR: next record to undo for this transaction
	StoreID  uint32
	PageID   uint64
	Payload  []byte
}

// IsSystem reports whether the record belongs to an atomic action.
func (r *Record) IsSystem() bool { return r.Flags&FlagSystem != 0 }

const headerSize = 4 + 4 + 2 + 2 + 2 + 8 + 8 + 8 + 4 + 8 // len,crc,type,flags,kind,txn,prev,undonext,store,page

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// encode appends the wire form of r (excluding LSN, which is positional)
// to dst and returns the extended slice.
func encode(dst []byte, r *Record) []byte {
	total := headerSize + len(r.Payload)
	off := len(dst)
	dst = append(dst, make([]byte, total)...)
	b := dst[off:]
	binary.LittleEndian.PutUint32(b[0:], uint32(total))
	// CRC filled below over bytes [8:total].
	binary.LittleEndian.PutUint16(b[8:], uint16(r.Type))
	binary.LittleEndian.PutUint16(b[10:], uint16(r.Flags))
	binary.LittleEndian.PutUint16(b[12:], uint16(r.Kind))
	binary.LittleEndian.PutUint64(b[14:], uint64(r.TxnID))
	binary.LittleEndian.PutUint64(b[22:], uint64(r.PrevLSN))
	binary.LittleEndian.PutUint64(b[30:], uint64(r.UndoNext))
	binary.LittleEndian.PutUint32(b[38:], r.StoreID)
	binary.LittleEndian.PutUint64(b[42:], r.PageID)
	copy(b[headerSize:], r.Payload)
	crc := crc32.Checksum(b[8:total], crcTable)
	binary.LittleEndian.PutUint32(b[4:], crc)
	return dst
}

// ErrBadRecord reports a torn or corrupt record; recovery treats it as the
// end of the log.
var ErrBadRecord = errors.New("wal: torn or corrupt record")

// decode parses one record starting at b[0]. It returns the record and its
// encoded length.
func decode(b []byte) (Record, int, error) {
	if len(b) < headerSize {
		return Record{}, 0, ErrBadRecord
	}
	total := int(binary.LittleEndian.Uint32(b[0:]))
	if total < headerSize || total > len(b) {
		return Record{}, 0, ErrBadRecord
	}
	crc := binary.LittleEndian.Uint32(b[4:])
	if crc32.Checksum(b[8:total], crcTable) != crc {
		return Record{}, 0, ErrBadRecord
	}
	r := Record{
		Type:     RecType(binary.LittleEndian.Uint16(b[8:])),
		Flags:    Flags(binary.LittleEndian.Uint16(b[10:])),
		Kind:     Kind(binary.LittleEndian.Uint16(b[12:])),
		TxnID:    TxnID(binary.LittleEndian.Uint64(b[14:])),
		PrevLSN:  LSN(binary.LittleEndian.Uint64(b[22:])),
		UndoNext: LSN(binary.LittleEndian.Uint64(b[30:])),
		StoreID:  binary.LittleEndian.Uint32(b[38:]),
		PageID:   binary.LittleEndian.Uint64(b[42:]),
	}
	if total > headerSize {
		r.Payload = make([]byte, total-headerSize)
		copy(r.Payload, b[headerSize:total])
	}
	return r, total, nil
}

// Log is the log manager. It is safe for concurrent use.
type Log struct {
	mu        sync.Mutex
	buf       []byte // entire log contents; buf[0] is a pad byte so LSN 0 is invalid
	stableLSN LSN    // bytes [ :stableLSN] survive a crash
	ckptLSN   LSN    // master-record anchor: LSN of the last stable checkpoint
	flushes   int64  // number of Force calls that advanced stableLSN
	appends   int64
}

// New returns an empty log.
func New() *Log {
	return &Log{buf: []byte{0}, stableLSN: 1}
}

// NewFromImage continues a log from a crash image: the image's contents
// become the stable prefix and appends resume after it, preserving LSN
// continuity across restart exactly as a real single log would.
func NewFromImage(r *Reader) *Log {
	buf := make([]byte, len(r.buf))
	copy(buf, r.buf)
	if len(buf) == 0 {
		buf = []byte{0}
	}
	return &Log{buf: buf, stableLSN: LSN(len(buf)), ckptLSN: r.ckptLSN}
}

// NoteCheckpoint records lsn as the most recent checkpoint anchor (the
// "master record" of real systems). Callers force the log through lsn
// first; an unforced anchor would not survive a crash, so CrashImage drops
// anchors beyond the truncation point.
func (l *Log) NoteCheckpoint(lsn LSN) {
	l.mu.Lock()
	if lsn <= l.stableLSN || lsn < LSN(len(l.buf)) {
		l.ckptLSN = lsn
	}
	l.mu.Unlock()
}

// CheckpointLSN returns the current checkpoint anchor, or NilLSN.
func (l *Log) CheckpointLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ckptLSN
}

// Append adds r to the log buffer, assigns and returns its LSN. The record
// is not stable until a Force at or beyond it.
func (l *Log) Append(r *Record) LSN {
	l.mu.Lock()
	lsn := LSN(len(l.buf))
	r.LSN = lsn
	l.buf = encode(l.buf, r)
	l.appends++
	l.mu.Unlock()
	return lsn
}

// Force makes every record with LSN <= lsn stable. Forcing NilLSN is a
// no-op; forcing beyond the end flushes everything.
func (l *Log) Force(lsn LSN) {
	if lsn == NilLSN {
		return
	}
	l.mu.Lock()
	end := LSN(len(l.buf))
	// A record is stable iff it starts below stableLSN, so a force is
	// needed whenever the requested record starts at or past it.
	if lsn >= l.stableLSN && end > l.stableLSN {
		// A force writes whole buffered records: stability advances to
		// the current end of buffer, as a real group-commit write would.
		l.stableLSN = end
		l.flushes++
	}
	l.mu.Unlock()
}

// ForceAll makes the entire log stable.
func (l *Log) ForceAll() {
	l.mu.Lock()
	if l.stableLSN < LSN(len(l.buf)) {
		l.stableLSN = LSN(len(l.buf))
		l.flushes++
	}
	l.mu.Unlock()
}

// StableLSN returns the first LSN that is NOT stable; records starting at
// or beyond it are lost in a crash.
func (l *Log) StableLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stableLSN
}

// EndLSN returns the LSN one past the last appended record.
func (l *Log) EndLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LSN(len(l.buf))
}

// Stats returns the number of appends and physical flushes so far, for the
// relative-durability experiment (T12).
func (l *Log) Stats() (appends, flushes int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends, l.flushes
}

// Read returns the record starting at lsn, reading from the full buffered
// log (normal processing, e.g. rollback, sees unforced records too).
func (l *Log) Read(lsn LSN) (Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn == NilLSN || lsn >= LSN(len(l.buf)) {
		return Record{}, fmt.Errorf("wal: read at invalid LSN %d", lsn)
	}
	r, _, err := decode(l.buf[lsn:])
	if err != nil {
		return Record{}, err
	}
	r.LSN = lsn
	return r, nil
}

// CrashImage returns the stable prefix of the log as a Reader, simulating
// loss of the volatile tail. If truncateAt is non-nil and lies at a record
// boundary before the stable point, the image is truncated there instead,
// which lets the crash matrix test every prefix of a run.
func (l *Log) CrashImage(truncateAt *LSN) *Reader {
	l.mu.Lock()
	defer l.mu.Unlock()
	end := l.stableLSN
	if truncateAt != nil && *truncateAt < end {
		end = *truncateAt
	}
	img := make([]byte, end)
	copy(img, l.buf[:end])
	ckpt := l.ckptLSN
	if ckpt >= end {
		ckpt = NilLSN
	}
	return &Reader{buf: img, ckptLSN: ckpt}
}

// FullImage returns a Reader over the entire buffered log, for tests that
// want to enumerate record boundaries.
func (l *Log) FullImage() *Reader {
	l.mu.Lock()
	defer l.mu.Unlock()
	img := make([]byte, len(l.buf))
	copy(img, l.buf)
	return &Reader{buf: img, ckptLSN: l.ckptLSN}
}

// Reader iterates a (possibly truncated) log image during restart.
type Reader struct {
	buf     []byte
	ckptLSN LSN
}

// CheckpointLSN returns the image's checkpoint anchor, or NilLSN if no
// checkpoint survived.
func (r *Reader) CheckpointLSN() LSN { return r.ckptLSN }

// Scan calls fn for each record from lsn (NilLSN means the log start) to
// the end of the image, stopping early if fn returns false. A torn record
// terminates the scan silently, as restart would.
func (r *Reader) Scan(lsn LSN, fn func(Record) bool) {
	pos := int(lsn)
	if pos == 0 {
		pos = 1
	}
	for pos < len(r.buf) {
		rec, n, err := decode(r.buf[pos:])
		if err != nil {
			return
		}
		rec.LSN = LSN(pos)
		if !fn(rec) {
			return
		}
		pos += n
	}
}

// Read returns the record at lsn within the image.
func (r *Reader) Read(lsn LSN) (Record, error) {
	if lsn == NilLSN || int(lsn) >= len(r.buf) {
		return Record{}, fmt.Errorf("wal: image read at invalid LSN %d", lsn)
	}
	rec, _, err := decode(r.buf[lsn:])
	if err != nil {
		return Record{}, err
	}
	rec.LSN = lsn
	return rec, nil
}

// EndLSN returns one past the last byte of the image.
func (r *Reader) EndLSN() LSN { return LSN(len(r.buf)) }

// Boundaries returns the LSN of every record boundary in the image,
// including the final end-of-log position. The crash matrix uses these as
// truncation points.
func (r *Reader) Boundaries() []LSN {
	var out []LSN
	pos := 1
	for pos < len(r.buf) {
		out = append(out, LSN(pos))
		_, n, err := decode(r.buf[pos:])
		if err != nil {
			break
		}
		pos += n
	}
	out = append(out, LSN(pos))
	return out
}
