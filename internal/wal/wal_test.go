package wal

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
)

func TestAppendReadRoundTrip(t *testing.T) {
	l := New()
	recs := []Record{
		{Type: RecBegin, TxnID: 1},
		{Type: RecUpdate, TxnID: 1, Kind: 7, StoreID: 3, PageID: 9, PrevLSN: 1, Payload: []byte("hello")},
		{Type: RecCLR, TxnID: 1, Kind: 8, UndoNext: 1, Payload: []byte{}},
		{Type: RecCommit, TxnID: 1, Flags: FlagSystem},
		{Type: RecEnd, TxnID: 1},
	}
	var lsns []LSN
	for i := range recs {
		lsns = append(lsns, l.Append(&recs[i]))
	}
	for i, lsn := range lsns {
		got, err := l.Read(lsn)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got.Type != recs[i].Type || got.TxnID != recs[i].TxnID || got.Kind != recs[i].Kind ||
			got.StoreID != recs[i].StoreID || got.PageID != recs[i].PageID ||
			got.PrevLSN != recs[i].PrevLSN || got.UndoNext != recs[i].UndoNext ||
			got.Flags != recs[i].Flags || !bytes.Equal(got.Payload, recs[i].Payload) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got, recs[i])
		}
		if got.LSN != lsn {
			t.Fatalf("record %d LSN %d != %d", i, got.LSN, lsn)
		}
	}
}

func TestPayloadRoundTripProperty(t *testing.T) {
	f := func(payload []byte, txn uint64, kind uint16, page uint64) bool {
		l := New()
		lsn := l.Append(&Record{Type: RecUpdate, TxnID: TxnID(txn), Kind: Kind(kind), PageID: page, Payload: payload})
		got, err := l.Read(lsn)
		if err != nil {
			return false
		}
		if len(payload) == 0 {
			return len(got.Payload) == 0
		}
		return bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLSNsAreMonotone(t *testing.T) {
	l := New()
	var prev LSN
	for i := 0; i < 100; i++ {
		lsn := l.Append(&Record{Type: RecUpdate, Payload: make([]byte, i)})
		if lsn <= prev {
			t.Fatalf("LSN %d not after %d", lsn, prev)
		}
		prev = lsn
	}
}

func TestForceAndCrashTruncation(t *testing.T) {
	l := New()
	var lsns []LSN
	for i := 0; i < 10; i++ {
		lsns = append(lsns, l.Append(&Record{Type: RecUpdate, TxnID: TxnID(i)}))
	}
	l.Force(lsns[4])
	// Force flushes the whole buffer (group commit): stable covers all.
	img := l.CrashImage(nil)
	count := 0
	img.Scan(NilLSN, func(r Record) bool { count++; return true })
	if count != 10 {
		t.Fatalf("stable records = %d, want 10 (group write)", count)
	}

	// Unforced tail is lost.
	l2 := New()
	for i := 0; i < 5; i++ {
		l2.Append(&Record{Type: RecUpdate, TxnID: TxnID(i)})
	}
	mid := l2.EndLSN()
	l2.Force(mid - 1)
	for i := 5; i < 10; i++ {
		l2.Append(&Record{Type: RecUpdate, TxnID: TxnID(i)})
	}
	img2 := l2.CrashImage(nil)
	count = 0
	img2.Scan(NilLSN, func(r Record) bool { count++; return true })
	if count != 5 {
		t.Fatalf("stable records = %d, want 5", count)
	}
}

func TestCrashImageExplicitTruncation(t *testing.T) {
	l := New()
	var lsns []LSN
	for i := 0; i < 10; i++ {
		lsns = append(lsns, l.Append(&Record{Type: RecUpdate, TxnID: TxnID(i)}))
	}
	l.ForceAll()
	img := l.CrashImage(&lsns[3])
	count := 0
	img.Scan(NilLSN, func(r Record) bool { count++; return true })
	if count != 3 {
		t.Fatalf("truncated image has %d records, want 3", count)
	}
}

func TestBoundaries(t *testing.T) {
	l := New()
	n := 7
	for i := 0; i < n; i++ {
		l.Append(&Record{Type: RecUpdate, Payload: make([]byte, i*3)})
	}
	l.ForceAll()
	b := l.FullImage().Boundaries()
	if len(b) != n+1 {
		t.Fatalf("boundaries = %d, want %d", len(b), n+1)
	}
	if b[0] != 1 || b[len(b)-1] != l.EndLSN() {
		t.Fatalf("boundary endpoints %d..%d, want 1..%d", b[0], b[len(b)-1], l.EndLSN())
	}
}

func TestTornRecordStopsScan(t *testing.T) {
	l := New()
	l.Append(&Record{Type: RecUpdate, TxnID: 1})
	lsn2 := l.Append(&Record{Type: RecUpdate, TxnID: 2, Payload: []byte("payload")})
	l.ForceAll()
	img := l.CrashImage(nil)
	// Corrupt a byte inside the second record.
	img.buf[int(lsn2)+headerSize] ^= 0xFF
	count := 0
	img.Scan(NilLSN, func(r Record) bool { count++; return true })
	if count != 1 {
		t.Fatalf("scan past torn record: count = %d, want 1", count)
	}
	if _, err := img.Read(lsn2); err == nil {
		t.Fatal("read of torn record did not fail")
	}
}

func TestNewFromImageContinues(t *testing.T) {
	l := New()
	lsn1 := l.Append(&Record{Type: RecBegin, TxnID: 1})
	l.ForceAll()
	l2 := NewFromImage(l.CrashImage(nil))
	if l2.EndLSN() != l.EndLSN() {
		t.Fatalf("continuation EndLSN %d != %d", l2.EndLSN(), l.EndLSN())
	}
	got, err := l2.Read(lsn1)
	if err != nil || got.TxnID != 1 {
		t.Fatalf("old record unreadable: %+v %v", got, err)
	}
	lsn2 := l2.Append(&Record{Type: RecCommit, TxnID: 1})
	if lsn2 <= lsn1 {
		t.Fatal("LSN continuity broken")
	}
}

func TestCheckpointAnchor(t *testing.T) {
	l := New()
	l.Append(&Record{Type: RecUpdate})
	ck := l.Append(&Record{Type: RecCheckpoint})
	l.Force(ck)
	l.NoteCheckpoint(ck)
	if l.CheckpointLSN() != ck {
		t.Fatal("anchor not recorded")
	}
	img := l.CrashImage(nil)
	if img.CheckpointLSN() != ck {
		t.Fatal("anchor lost in crash image")
	}
	// An anchor beyond the truncation point must be dropped.
	cut := ck
	img2 := l.CrashImage(&cut)
	if img2.CheckpointLSN() != NilLSN {
		t.Fatal("anchor survived truncation before it")
	}
}

func TestStatsCountForces(t *testing.T) {
	l := New()
	lsn := l.Append(&Record{Type: RecCommit})
	l.Force(lsn)
	l.Force(lsn) // second force is a no-op
	a, f := l.Stats()
	if a != 1 || f != 1 {
		t.Fatalf("appends=%d flushes=%d, want 1,1", a, f)
	}
}

func TestConcurrentAppends(t *testing.T) {
	l := New()
	const workers = 8
	const each = 500
	var wg sync.WaitGroup
	lsnCh := make(chan LSN, workers*each)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				lsnCh <- l.Append(&Record{Type: RecUpdate, TxnID: TxnID(w), Payload: []byte{byte(i)}})
			}
		}(w)
	}
	wg.Wait()
	close(lsnCh)
	seen := make(map[LSN]bool)
	for lsn := range lsnCh {
		if seen[lsn] {
			t.Fatalf("duplicate LSN %d", lsn)
		}
		seen[lsn] = true
		if _, err := l.Read(lsn); err != nil {
			t.Fatalf("read %d: %v", lsn, err)
		}
	}
	if len(seen) != workers*each {
		t.Fatalf("records = %d", len(seen))
	}
}

// TestConcurrentAppendForce runs many appenders (each periodically forcing
// its own records) against a verifier that continuously takes crash images
// and walks them end to end. Because Force may only advance the stable
// watermark over fully published records, every crash image must decode
// contiguously up to its end — a hole or torn record below the watermark
// would truncate the walk early. Run under -race this also checks the
// publication protocol's happens-before edges.
func TestConcurrentAppendForce(t *testing.T) {
	l := New()
	const workers = 8
	const perWorker = 400

	stop := make(chan struct{})
	var verifier sync.WaitGroup
	verifier.Add(1)
	go func() {
		defer verifier.Done()
		for {
			img := l.CrashImage(nil)
			end := img.EndLSN()
			next := LSN(1)
			img.Scan(NilLSN, func(r Record) bool {
				next = r.LSN + LSN(headerSize+len(r.Payload))
				return true
			})
			if next != end {
				t.Errorf("crash image walk stopped at %d, want %d: unpublished record below stable watermark", next, end)
				return
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(w)}, 16+w)
			var prev LSN
			for i := 0; i < perWorker; i++ {
				lsn := l.Append(&Record{
					Type: RecUpdate, TxnID: TxnID(w + 1), PrevLSN: prev,
					StoreID: 1, PageID: uint64(i + 2), Payload: payload,
				})
				prev = lsn
				if i%17 == 0 {
					l.Force(lsn)
					if l.StableLSN() <= lsn {
						t.Errorf("worker %d: stable %d after Force(%d)", w, l.StableLSN(), lsn)
					}
				}
				r, err := l.Read(lsn)
				if err != nil {
					t.Errorf("worker %d: read back %d: %v", w, lsn, err)
					return
				}
				if r.TxnID != TxnID(w+1) || !bytes.Equal(r.Payload, payload) {
					t.Errorf("worker %d: record %d corrupted", w, lsn)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	verifier.Wait()

	l.ForceAll()
	img := l.CrashImage(nil)
	count := 0
	img.Scan(NilLSN, func(r Record) bool {
		count++
		return true
	})
	if count != workers*perWorker {
		t.Errorf("final image has %d records, want %d", count, workers*perWorker)
	}
	appends, flushes := l.Stats()
	if appends != int64(workers*perWorker) {
		t.Errorf("appends = %d, want %d", appends, workers*perWorker)
	}
	if flushes == 0 {
		t.Error("no forces recorded")
	}
}
